// Package cluster implements the paper's cluster manager (Section IV-B):
// it builds the BE×LC performance matrix from fitted Cobb-Douglas utility
// models and solves the placement assignment to maximize total cluster
// throughput, then drives the multi-server simulation under the three
// evaluated policies — Random, POM (power-optimized server management with
// random placement), and POColo (power-optimized management plus
// utility-guided placement).
package cluster

import (
	"errors"
	"fmt"
	"math"
	"time"

	"pocolo/internal/assign"
	"pocolo/internal/invariant"
	"pocolo/internal/machine"
	"pocolo/internal/obs"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// DefaultLoadRange is the paper's evaluation load distribution: uniform
// over 10%–90% of the LC application's peak in steps of 10%.
func DefaultLoadRange() []float64 {
	out := make([]float64, 0, 9)
	for l := 1; l <= 9; l++ {
		out = append(out, float64(l)/10)
	}
	return out
}

// Matrix is the cluster manager's performance matrix: Value[i][j] is the
// estimated throughput of BE application i when co-located with LC server
// j, averaged over the LC load range.
type Matrix struct {
	BENames []string
	LCNames []string
	Value   [][]float64
}

// MatrixConfig parameterizes matrix construction.
type MatrixConfig struct {
	// Machine is the server platform.
	Machine machine.Config
	// LC holds the latency-critical specs (one server per spec); required.
	LC []*workload.Spec
	// BE holds the best-effort candidates; required.
	BE []*workload.Spec
	// Models maps application name to its fitted utility model; required
	// for every listed app.
	Models map[string]*utility.Model
	// Loads is the LC load range to average over (default DefaultLoadRange).
	Loads []float64
	// Parallel bounds the worker pool the BE×LC cells are estimated
	// through: 0 means GOMAXPROCS, 1 forces the sequential path. Cells are
	// independent pure functions of the models, so the matrix is identical
	// at every setting.
	Parallel int
	// Trace, when non-nil, records a build_matrix phase span.
	Trace *trace.Tracer
	// Now timestamps the build_matrix span event (default: the simulation
	// epoch — in the simulation pipeline construction happens before
	// simulated time starts; the live controller passes its clock).
	Now time.Time
	// Obs, when non-nil, receives per-pod solve latency and batch-repair
	// counters from the sharded assignment path. Series are keyed by pod
	// name, so the transient per-round Sharded reconstruction folds into
	// stable series.
	Obs *obs.Registry
}

// BuildMatrix estimates the performance matrix from the fitted models:
// for each LC load it computes the primary's least-power allocation, the
// complementary spare resources, and the power headroom under the
// provisioned capacity; the BE app's throughput at that operating point is
// its power-budget-constrained Cobb-Douglas demand on the spare resources.
func BuildMatrix(cfg MatrixConfig) (*Matrix, error) {
	stamp := cfg.Now
	if stamp.IsZero() {
		stamp = simEpoch()
	}
	sp := cfg.Trace.StartSpan("build_matrix")
	defer sp.End(stamp)
	if len(cfg.BE) == 0 {
		return nil, errors.New("cluster: need at least one LC and one BE application")
	}
	// Construction goes through the delta-driven builder: cells with
	// identical (machine, model, host-class) fingerprints are evaluated
	// once and fanned out — bit-identical to evaluating every cell, since
	// cells are pure functions of the fingerprinted inputs — and distinct
	// cells fan through the bounded worker pool with the lowest-index
	// error reported, matching the sequential row-major loop's first
	// error.
	b, err := NewMatrixBuilder(cfg)
	if err != nil {
		return nil, err
	}
	return b.Matrix(), nil
}

// estimatePairThroughput averages the model-estimated BE throughput over
// the LC load range for one (LC, BE) pairing.
func estimatePairThroughput(cfg machine.Config, lc *workload.Spec, lcModel, beModel *utility.Model, loads []float64) (float64, error) {
	total := 0.0
	bounds := []float64{float64(cfg.Cores), float64(cfg.LLCWays)}
	for _, frac := range loads {
		target := frac * lc.PeakLoad
		r, err := lcModel.MinPowerAllocBox(target, bounds)
		if err != nil {
			// Load unreachable even with the whole machine: the primary
			// takes everything and the co-runner gets nothing at this
			// level.
			continue
		}
		// Integerize conservatively and clamp to the machine.
		lcCores := clampInt(int(math.Ceil(r[0])), 1, cfg.Cores)
		lcWays := clampInt(int(math.Ceil(r[1])), 1, cfg.LLCWays)
		spare := []float64{
			float64(cfg.Cores - lcCores),
			float64(cfg.LLCWays - lcWays),
		}
		// Power headroom under the provisioned capacity: the cap minus the
		// idle floor minus the primary's (model-estimated) dynamic draw.
		headroom := lc.ProvisionedPowerW - cfg.IdlePowerW - lcModel.DynamicPower([]float64{float64(lcCores), float64(lcWays)})
		if headroom <= 0 || spare[0] <= 0 || spare[1] <= 0 {
			continue // nothing to harvest at this load
		}
		demand, err := beModel.DemandCapped(headroom, spare)
		if err != nil {
			return 0, err
		}
		total += beModel.Perf(demand)
	}
	return total / float64(len(loads)), nil
}

// Solve finds the placement maximizing the matrix total with the given
// solver ("lp", "hungarian", or "exhaustive"). It returns the mapping from
// BE name to LC name and the predicted total.
func (mx *Matrix) Solve(method string) (map[string]string, float64, error) {
	return mx.SolveTraced(method, nil, time.Time{})
}

// SolveTraced is Solve with decision tracing: a solve phase span and one
// SolveSummary event are recorded at the given timestamp (a controller
// passes its clock, the simulation pipeline passes the epoch). A nil
// tracer makes it identical to Solve.
func (mx *Matrix) SolveTraced(method string, tr *trace.Tracer, now time.Time) (map[string]string, float64, error) {
	sp := tr.StartSpan("solve")
	var (
		idx []int
		val float64
		err error
	)
	switch method {
	case "lp":
		idx, val, err = assign.LP(mx.Value)
	case "hungarian":
		idx, val, err = assign.Hungarian(mx.Value)
	case "exhaustive":
		idx, val, err = assign.Exhaustive(mx.Value)
	default:
		return nil, 0, fmt.Errorf("cluster: unknown solver %q", method)
	}
	if err != nil {
		return nil, 0, err
	}
	// Validate the solver's output at the call site: the assignment must be
	// a matching inside the matrix and the reported total must equal the
	// recomputed sum, so a solver regression cannot leak a bogus placement
	// into an experiment table.
	if err := invariant.CheckAssignment(mx.Value, idx, val); err != nil {
		return nil, 0, fmt.Errorf("cluster: solver %q: %w", method, err)
	}
	placement := make(map[string]string, len(idx))
	for i, j := range idx {
		placement[mx.BENames[i]] = mx.LCNames[j]
	}
	tr.SolveSummary(now, trace.SolveSummary{
		Method: method, Rows: len(mx.BENames), Cols: len(mx.LCNames), Total: val,
	})
	sp.End(now)
	return placement, val, nil
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
