package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"pocolo/internal/invariant"
	"pocolo/internal/machine"
	"pocolo/internal/parallel"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// Policy is a full cluster policy: a placement strategy plus a server
// management strategy, matching the paper's Section V-D ablation.
type Policy int

const (
	// Random places BE apps on random LC servers and manages each server
	// with the power-unaware feedback controller — the paper's baseline.
	Random Policy = iota
	// POM keeps the random placement but manages each server with the
	// power-optimized (utility-model-guided) controller.
	POM
	// POColo uses the performance-matrix placement (LP solver) and the
	// power-optimized controller — the full system.
	POColo
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Random:
		return "random"
	case POM:
		return "pom"
	case POColo:
		return "pocolo"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy is the inverse of Policy.String, for flag and config
// parsing.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "random":
		return Random, nil
	case "pom":
		return POM, nil
	case "pocolo":
		return POColo, nil
	default:
		return 0, fmt.Errorf("cluster: unknown policy %q (want random, pom, or pocolo)", s)
	}
}

// Config assembles a cluster evaluation run.
type Config struct {
	// Machine is the per-server platform.
	Machine machine.Config
	// LC holds the latency-critical apps, one server each; required.
	LC []*workload.Spec
	// BE holds the best-effort apps to place; len(BE) ≤ len(LC).
	BE []*workload.Spec
	// Models holds fitted utility models for every application; required.
	Models map[string]*utility.Model
	// Dwell is the time each LC load level is held (default 5 s); every
	// server sweeps the uniform 10–90% range, the paper's evaluation
	// distribution.
	Dwell time.Duration
	// Tick is the engine step (default 100 ms).
	Tick time.Duration
	// Seed drives placement randomness and per-host noise.
	Seed int64
	// TargetSlack overrides the server managers' latency slack guard
	// (default: the manager's own 0.10 default). Used by the slack
	// sensitivity ablation.
	TargetSlack float64
	// Parallel bounds the worker pool the run fans independent simulation
	// units (hosts, trials, load levels) through: 0 means GOMAXPROCS, 1
	// forces the sequential path. Results are identical at every setting —
	// every unit has its own seeded noise streams and aggregation order is
	// fixed — so Parallel trades only wall-clock time.
	Parallel int
	// Invariants binds the invariant harness to every managed host's
	// per-tick observe path: resource conservation, power-cap compliance,
	// slack-recovery liveness, and physical sanity are asserted on every
	// tick, and any violation fails the run with an error. Checking does
	// not perturb results — observers run after the tick's state is final.
	Invariants bool
	// PlannerOff forces every server manager in the run through the exact
	// per-tick grid search instead of the precomputed allocation planner.
	// Results are bit-identical either way; the switch keeps the exact
	// search exercised (race tests, equivalence suites) and serves as an
	// escape hatch.
	PlannerOff bool
	// Trace, when non-nil, collects decision events from every simulated
	// host and the placement pipeline. Each host records into its own
	// child tracer (keyed TraceLabel + host name) so parallel execution
	// stays deterministic; Trace.Events() merges them into one timeline.
	// Traced runs bypass the process-wide sweep memo — a memoized result
	// would replay no decisions — so tracing trades the memo's speedup
	// for a complete timeline.
	Trace *trace.Set
	// TraceLabel prefixes the per-host trace keys (e.g. "trial3/") so
	// repeated simulations of the same host inside one run land on
	// distinct timelines.
	TraceLabel string
	// Budget, when non-nil, puts the run under a cluster power budget —
	// flat or hierarchical (see BudgetConfig). Budgeted runs step every
	// host on one shared engine and always bypass the sweep memo.
	Budget *BudgetConfig
	// Shard, when PodSize > 0, shards the POColo placement into
	// independently solved pods with cross-pod rebalancing (see Sharded)
	// instead of the full-matrix LP. The pod layout changes which
	// placement Place returns, so Shard is part of the memo fingerprint.
	Shard ShardSettings
}

func (c *Config) defaults() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if len(c.LC) == 0 {
		return errors.New("cluster: no LC applications")
	}
	if len(c.BE) > len(c.LC) {
		return fmt.Errorf("cluster: %d BE apps but only %d servers", len(c.BE), len(c.LC))
	}
	for _, s := range append(append([]*workload.Spec{}, c.LC...), c.BE...) {
		if _, ok := c.Models[s.Name]; !ok {
			return fmt.Errorf("cluster: no fitted model for %s", s.Name)
		}
	}
	if c.Dwell == 0 {
		c.Dwell = 5 * time.Second
	}
	if c.Tick == 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.Dwell <= 0 || c.Tick <= 0 {
		return errors.New("cluster: dwell and tick must be positive")
	}
	return nil
}

// Result summarizes one cluster run.
type Result struct {
	Policy Policy
	// Placement maps BE app name to the LC server (by LC app name) it ran
	// on.
	Placement map[string]string
	// Hosts holds per-server metrics keyed by LC app name.
	Hosts map[string]sim.Metrics
	// BENormThroughput is the cluster-mean BE throughput normalized to
	// each BE app's standalone full-machine peak (the paper's Fig. 12
	// metric, averaged over servers that had a co-runner).
	BENormThroughput float64
	// MeanPowerUtil is the cluster-mean power draw over provisioned
	// capacity (Fig. 13).
	MeanPowerUtil float64
	// TotalEnergyKWh is the summed energy use.
	TotalEnergyKWh float64
	// TotalBEOps is the summed best-effort operations completed.
	TotalBEOps float64
	// SLOViolFrac is the worst per-host SLO violation fraction.
	SLOViolFrac float64
	// Budget carries the installed shares and rebalance counters when the
	// run was budgeted (nil otherwise).
	Budget *BudgetResult
}

// PlaceRandom returns a uniformly random placement of the BE apps onto
// distinct LC servers.
func PlaceRandom(lc, be []*workload.Spec, seed int64) map[string]string {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(lc))
	placement := make(map[string]string, len(be))
	for i, b := range be {
		placement[b.Name] = lc[perm[i]].Name
	}
	return placement
}

// Place computes the POColo placement: build the performance matrix from
// the fitted models and solve it with the LP solver — or, when
// cfg.Shard.PodSize > 0, through the sharded incremental path with
// cross-pod rebalancing.
func Place(cfg Config) (map[string]string, float64, error) {
	if err := cfg.defaults(); err != nil {
		return nil, 0, err
	}
	tr := cfg.Trace.Tracer(cfg.TraceLabel + "cluster")
	mcfg := MatrixConfig{
		Machine:  cfg.Machine,
		LC:       cfg.LC,
		BE:       cfg.BE,
		Models:   cfg.Models,
		Parallel: cfg.Parallel,
		Trace:    tr,
	}
	if cfg.Shard.PodSize > 0 {
		sh, err := NewSharded(mcfg, cfg.Shard)
		if err != nil {
			return nil, 0, err
		}
		if _, err := sh.Rebalance(tr, simEpoch()); err != nil {
			return nil, 0, err
		}
		placement, total, err := sh.Solve(tr, simEpoch())
		if err != nil {
			return nil, 0, err
		}
		recordPlacement(tr, placement, "sharded solve")
		return placement, total, nil
	}
	mx, err := BuildMatrix(mcfg)
	if err != nil {
		return nil, 0, err
	}
	placement, total, err := mx.SolveTraced("lp", tr, simEpoch())
	if err != nil {
		return nil, 0, err
	}
	recordPlacement(tr, placement, "lp solve")
	return placement, total, nil
}

// recordPlacement records the chosen placement in a deterministic
// (sorted) order.
func recordPlacement(tr *trace.Tracer, placement map[string]string, reason string) {
	bes := make([]string, 0, len(placement))
	for be := range placement {
		bes = append(bes, be)
	}
	sort.Strings(bes)
	for _, be := range bes {
		tr.Placement(simEpoch(), trace.Placement{BE: be, Node: placement[be], Reason: reason})
	}
}

// simEpoch is the engine's time origin; cluster-level events (placement,
// solve) happen "before" simulated time starts, so they are stamped at
// the epoch to keep seeded traces deterministic.
func simEpoch() time.Time { return time.Unix(0, 0).UTC() }

// RunPlacement simulates the cluster under an explicit placement with the
// given server-level management policy.
//
// Hosts are fully independent — each gets its own machine, server manager,
// and seeded noise streams — so every host+manager pair runs on its own
// single-host engine in a bounded worker pool (cfg.Parallel) and the
// per-host metrics are aggregated in fixed LC order afterwards. The result
// is bit-identical to stepping all hosts on one sequential engine.
// Finished runs are memoized process-wide (see cache.go).
func RunPlacement(cfg Config, placement map[string]string, mgmt servermgr.LCPolicy) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	// Budgeted runs need all hosts in lockstep on one engine and never
	// touch the memo — the budgeter's installed caps depend on the whole
	// cluster's demand history, which a per-host cache key cannot capture.
	if cfg.Budget != nil {
		return runBudgetedPlacement(cfg, placement, mgmt)
	}
	// Invert the placement to find each server's co-runner.
	beBy := make(map[string]*workload.Spec)
	for _, b := range cfg.BE {
		lcName, ok := placement[b.Name]
		if !ok {
			return Result{}, fmt.Errorf("cluster: placement misses BE app %s", b.Name)
		}
		if _, dup := beBy[lcName]; dup {
			return Result{}, fmt.Errorf("cluster: two BE apps placed on %s", lcName)
		}
		beBy[lcName] = b
	}

	// Traced runs bypass the memo in both directions: a cache hit would
	// replay no decisions, and a traced result must not poison the cache
	// for untraced callers expecting the speedup.
	traced := cfg.Trace != nil
	var key string
	if !traced {
		key = placementKey(&cfg, placement, mgmt)
		if res, ok := memoGetPlacement(key); ok {
			return res, nil
		}
	}

	duration := workload.UniformSweep(cfg.Dwell).Duration()
	perHost := make([]sim.Metrics, len(cfg.LC))
	err := parallel.ForEach(len(cfg.LC), cfg.Parallel, func(i int) error {
		lc := cfg.LC[i]
		m, err := runManagedHost(cfg, lc, beBy[lc.Name], cfg.Seed+int64(i)*977, cfg.Seed+int64(i)*389, mgmt, duration)
		if err != nil {
			return err
		}
		perHost[i] = m
		return nil
	})
	if err != nil {
		return Result{}, err
	}

	res := Result{
		Placement: placement,
		Hosts:     make(map[string]sim.Metrics, len(cfg.LC)),
	}
	var normSum float64
	var normCount int
	var utilSum float64
	for i, lc := range cfg.LC {
		m := perHost[i]
		res.Hosts[lc.Name] = m
		res.TotalEnergyKWh += m.EnergyKWh
		res.TotalBEOps += m.BEOps
		utilSum += m.PowerUtil
		if m.SLOViolFrac > res.SLOViolFrac {
			res.SLOViolFrac = m.SLOViolFrac
		}
		if be := beBy[lc.Name]; be != nil {
			normSum += m.BEMeanThr / be.PeakLoad
			normCount++
		}
	}
	res.MeanPowerUtil = utilSum / float64(len(cfg.LC))
	if normCount > 0 {
		res.BENormThroughput = normSum / float64(normCount)
	}
	if !traced {
		memoPutPlacement(key, res)
	}
	return res, nil
}

// runManagedHost simulates one host with its server manager on a private
// single-host engine for the given duration and returns its metrics.
func runManagedHost(cfg Config, lc, be *workload.Spec, hostSeed, mgrSeed int64, mgmt servermgr.LCPolicy, duration time.Duration) (sim.Metrics, error) {
	loadTrace := workload.UniformSweep(cfg.Dwell)
	host, err := sim.NewHost(sim.HostConfig{
		Name:       lc.Name,
		Machine:    cfg.Machine,
		LC:         lc,
		BE:         be,
		Trace:      loadTrace,
		Seed:       hostSeed,
		SeriesHint: seriesHint(duration, cfg.Tick),
	})
	if err != nil {
		return sim.Metrics{}, err
	}
	engine, err := sim.NewEngine(cfg.Tick)
	if err != nil {
		return sim.Metrics{}, err
	}
	if err := engine.AddHost(host); err != nil {
		return sim.Metrics{}, err
	}
	mgr, err := servermgr.New(servermgr.Config{
		Host:        host,
		Model:       cfg.Models[lc.Name],
		Policy:      mgmt,
		TargetSlack: cfg.TargetSlack,
		Seed:        mgrSeed,
		PlannerOff:  cfg.PlannerOff,
		Tracer:      cfg.Trace.Tracer(cfg.TraceLabel + lc.Name),
	})
	if err != nil {
		return sim.Metrics{}, err
	}
	if err := mgr.Attach(engine); err != nil {
		return sim.Metrics{}, err
	}
	var harness *invariant.Harness
	if cfg.Invariants {
		harness = invariant.NewHarness()
		if err := harness.Watch(host, mgr); err != nil {
			return sim.Metrics{}, err
		}
		if err := harness.Bind(engine); err != nil {
			return sim.Metrics{}, err
		}
	}
	if err := engine.Run(duration); err != nil {
		return sim.Metrics{}, err
	}
	if harness != nil {
		if err := harness.Err(); err != nil {
			return sim.Metrics{}, fmt.Errorf("cluster: host %s: %w", lc.Name, err)
		}
	}
	return host.Metrics(), nil
}

// seriesHint sizes the per-host telemetry series for a run of the given
// length so the hot path appends without reallocating.
func seriesHint(duration, tick time.Duration) int {
	if tick <= 0 {
		return 0
	}
	return int(duration/tick) + 2
}

// Run evaluates the cluster under one of the paper's three policies. For
// Random and POM the placement is the expectation over sampled random
// permutations (RandomTrials of them, derived from Seed); for POColo it is
// the LP placement.
func Run(cfg Config, policy Policy) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	switch policy {
	case POColo:
		placement, _, err := Place(cfg)
		if err != nil {
			return Result{}, err
		}
		res, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
		res.Policy = POColo
		return res, err
	case Random, POM:
		mgmt := servermgr.PowerUnaware
		if policy == POM {
			mgmt = servermgr.PowerOptimized
		}
		res, err := runRandomExpectation(cfg, mgmt)
		if err != nil {
			return Result{}, err
		}
		res.Policy = policy
		return res, nil
	default:
		return Result{}, fmt.Errorf("cluster: unknown policy %v", policy)
	}
}

// RandomTrials is the number of random placements averaged for the Random
// and POM policies.
const RandomTrials = 6

// runRandomExpectation averages cluster metrics over sampled random
// placements. The trials are independent (each has its own derived seed),
// so they run concurrently through the worker pool; aggregation stays in
// trial order, keeping the average bit-identical to the sequential loop.
func runRandomExpectation(cfg Config, mgmt servermgr.LCPolicy) (Result, error) {
	trials := make([]Result, RandomTrials)
	err := parallel.ForEach(RandomTrials, cfg.Parallel, func(trial int) error {
		placement := PlaceRandom(cfg.LC, cfg.BE, cfg.Seed+int64(trial)*31)
		trialCfg := cfg
		trialCfg.Seed = cfg.Seed + int64(trial)*7919
		if cfg.Trace != nil {
			// Each trial simulates the same hosts again; a per-trial label
			// keeps their timelines distinct in the shared trace set.
			trialCfg.TraceLabel = fmt.Sprintf("%strial%d/", cfg.TraceLabel, trial)
		}
		res, err := RunPlacement(trialCfg, placement, mgmt)
		if err != nil {
			return err
		}
		trials[trial] = res
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	return aggregateTrials(trials), nil
}

// aggregateTrials averages per-trial cluster results in trial order.
// Scalar metrics and per-host gauges are arithmetic means; SLOViolFrac is
// the worst trial (the paper reports worst-case SLO compliance); the
// per-host ProvisionedCapW passes through unchanged; and averaged event
// counts round to nearest rather than truncate.
func aggregateTrials(trials []Result) Result {
	agg := Result{
		Hosts:     make(map[string]sim.Metrics),
		Placement: make(map[string]string),
	}
	hostAgg := make(map[string]sim.Metrics)
	for trial := 0; trial < len(trials); trial++ {
		res := trials[trial]
		agg.BENormThroughput += res.BENormThroughput
		agg.MeanPowerUtil += res.MeanPowerUtil
		agg.TotalEnergyKWh += res.TotalEnergyKWh
		agg.TotalBEOps += res.TotalBEOps
		if res.SLOViolFrac > agg.SLOViolFrac {
			agg.SLOViolFrac = res.SLOViolFrac
		}
		for name, m := range res.Hosts {
			acc := hostAgg[name]
			acc.Host = name
			acc.BEOps += m.BEOps
			acc.BEMeanThr += m.BEMeanThr
			acc.LCOps += m.LCOps
			acc.MeanPowerW += m.MeanPowerW
			acc.PowerUtil += m.PowerUtil
			acc.EnergyKWh += m.EnergyKWh
			acc.CapOverFrac += m.CapOverFrac
			acc.CapEvents += m.CapEvents
			acc.SLOViolFrac += m.SLOViolFrac
			acc.MeanSlack += m.MeanSlack
			acc.DurationSec += m.DurationSec
			acc.ProvisionedCapW = m.ProvisionedCapW
			hostAgg[name] = acc
		}
	}
	n := float64(len(trials))
	agg.BENormThroughput /= n
	agg.MeanPowerUtil /= n
	agg.TotalEnergyKWh /= n
	agg.TotalBEOps /= n
	for name, m := range hostAgg {
		m.BEOps /= n
		m.BEMeanThr /= n
		m.LCOps /= n
		m.MeanPowerW /= n
		m.PowerUtil /= n
		m.EnergyKWh /= n
		m.CapOverFrac /= n
		m.SLOViolFrac /= n
		m.MeanSlack /= n
		m.DurationSec /= n
		// Round the averaged count to nearest: truncation would report one
		// excursion as zero whenever fewer than half the trials saw it.
		m.CapEvents = int(math.Round(float64(m.CapEvents) / n))
		agg.Hosts[name] = m
	}
	return agg
}

// PairResult is one cell of the exhaustive 4×4 placement study (Fig. 14):
// total normalized server throughput (LC goodput fraction plus BE
// throughput fraction) per load level for one (LC, BE) pairing.
type PairResult struct {
	LC, BE string
	// Loads holds the swept LC load fractions.
	Loads []float64
	// TotalNorm[i] is LC goodput/peak + BE throughput/peak at Loads[i].
	TotalNorm []float64
	// Mean is the average of TotalNorm.
	Mean float64
}

// RunPair simulates a single server hosting the LC app with the BE
// co-runner across the load sweep under power-optimized management and
// reports the combined normalized throughput per load level.
//
// The load levels are independent single-host runs (seeds derive from the
// load fraction, not the sweep order), so they run concurrently through
// the worker pool and the per-level results land at their load's index.
// Finished sweeps are memoized process-wide, so the sixteen sweeps behind
// Fig. 14 are simulated once and shared across figure regenerations.
func RunPair(cfg Config, lc, be *workload.Spec) (PairResult, error) {
	if err := cfg.defaults(); err != nil {
		return PairResult{}, err
	}
	traced := cfg.Trace != nil
	var key string
	if !traced {
		key = pairKey(&cfg, lc, be)
		if pr, ok := memoGetPair(key); ok {
			return pr, nil
		}
	}
	loads := DefaultLoadRange()
	pr := PairResult{LC: lc.Name, BE: be.Name, Loads: loads, TotalNorm: make([]float64, len(loads))}
	err := parallel.ForEach(len(loads), cfg.Parallel, func(i int) error {
		frac := loads[i]
		loadTrace, err := workload.NewConstantTrace(frac)
		if err != nil {
			return err
		}
		hostName := fmt.Sprintf("%s+%s@%.0f", lc.Name, be.Name, frac*100)
		host, err := sim.NewHost(sim.HostConfig{
			Name:       hostName,
			Machine:    cfg.Machine,
			LC:         lc,
			BE:         be,
			Trace:      loadTrace,
			Seed:       cfg.Seed + int64(frac*1000),
			SeriesHint: seriesHint(cfg.Dwell, cfg.Tick),
		})
		if err != nil {
			return err
		}
		engine, err := sim.NewEngine(cfg.Tick)
		if err != nil {
			return err
		}
		if err := engine.AddHost(host); err != nil {
			return err
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host:       host,
			Model:      cfg.Models[lc.Name],
			Policy:     servermgr.PowerOptimized,
			PlannerOff: cfg.PlannerOff,
			Tracer:     cfg.Trace.Tracer(cfg.TraceLabel + hostName),
		})
		if err != nil {
			return err
		}
		if err := mgr.Attach(engine); err != nil {
			return err
		}
		var harness *invariant.Harness
		if cfg.Invariants {
			harness = invariant.NewHarness()
			if err := harness.Watch(host, mgr); err != nil {
				return err
			}
			if err := harness.Bind(engine); err != nil {
				return err
			}
		}
		if err := engine.Run(cfg.Dwell); err != nil {
			return err
		}
		if harness != nil {
			if err := harness.Err(); err != nil {
				return fmt.Errorf("cluster: pair %s+%s: %w", lc.Name, be.Name, err)
			}
		}
		m := host.Metrics()
		pr.TotalNorm[i] = m.LCOps/(lc.PeakLoad*m.DurationSec) + m.BEMeanThr/be.PeakLoad
		return nil
	})
	if err != nil {
		return PairResult{}, err
	}
	for _, norm := range pr.TotalNorm {
		pr.Mean += norm
	}
	pr.Mean /= float64(len(loads))
	if !traced {
		memoPutPair(key, pr)
	}
	return pr, nil
}

// SortedNames returns the map keys in sorted order (test/report helper).
func SortedNames(m map[string]sim.Metrics) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
