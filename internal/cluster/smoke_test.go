package cluster

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"pocolo/internal/trace"
)

// TestSharded1kSmoke is the CI-scale end-to-end check on the sharded
// path: a seeded 1024-host, 768-job fleet with jittered caps is solved
// through 16 pods, rebalanced, and diffed against the unsharded
// from-scratch optimum (full matrix + Hungarian). The sharded placement
// must be feasible, within tolerance of the optimum, never above it,
// and the decision trace it emits must validate.
//
// The unsharded comparator is cubic in fleet size, so the test is too
// slow for the race-enabled default suite; CI runs it as a dedicated
// step with POCOLO_SMOKE_1K=1.
func TestSharded1kSmoke(t *testing.T) {
	if os.Getenv("POCOLO_SMOKE_1K") == "" {
		t.Skip("set POCOLO_SMOKE_1K=1 to run the 1k-host smoke (CI runs it as a dedicated step)")
	}
	cfg := shardFixture(t, 1024, 768)
	rng := rand.New(rand.NewSource(7))
	for _, lc := range cfg.LC {
		lc.ProvisionedPowerW = math.Round(lc.ProvisionedPowerW * (1 + 0.08*(2*rng.Float64()-1)))
	}

	epoch := time.Unix(0, 0).UTC()
	tr := trace.New("smoke", 0)
	sh, err := NewSharded(cfg, ShardSettings{})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Pods() != 16 {
		t.Fatalf("pods = %d, want 16", sh.Pods())
	}
	moves, err := sh.Rebalance(tr, epoch)
	if err != nil {
		t.Fatal(err)
	}
	placement, total, err := sh.Solve(tr, epoch)
	if err != nil {
		t.Fatal(err)
	}
	checkPlacement(t, cfg, placement)
	if err := sh.SelfCheck(); err != nil {
		t.Fatal(err)
	}

	opt := unshardedTotal(t, cfg)
	t.Logf("sharded %.1f vs unsharded optimum %.1f (%.2f%%), %d migrations",
		total, opt, 100*total/opt, moves)
	if total > opt*(1+1e-9) {
		t.Fatalf("sharded total %v exceeds the optimum %v", total, opt)
	}
	if total < 0.95*opt {
		t.Fatalf("sharded total %v below 95%% of the optimum %v", total, opt)
	}

	if err := trace.Validate(tr.Events()); err != nil {
		t.Fatal(err)
	}
	podSolves, sharded := 0, 0
	for _, ev := range tr.Events() {
		if ev.Kind != trace.KindSolve {
			continue
		}
		switch {
		case ev.Solve.Pod != "":
			podSolves++
		case ev.Solve.Method == "sharded":
			sharded++
		}
	}
	if podSolves != 16 || sharded != 1 {
		t.Fatalf("traced %d pod solves and %d sharded summaries, want 16 and 1", podSolves, sharded)
	}
}
