package cluster

import (
	"fmt"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// RunReplicated evaluates a datacenter-scale variant of the evaluation:
// each of the LC clusters runs `replicas` servers and each BE application
// submits `replicas` instances (Section II-A's datacenter "comprising of
// multiple such clusters"). The placement routes through the sharded
// incremental path with one pod per replica cluster, which is exact
// here, not an approximation: the replicated matrix is block-constant,
// so the assignment relaxes to a transportation problem over job and
// host types whose optimum equals replicas times the base block's
// optimum — exactly what the per-replica pod solves achieve. Pod matrix
// rows share the base block's cell fingerprints (the delta-cell memo
// collapses all replicas onto one block of evaluations), and the
// per-pod solves fan through the bounded worker pool.
//
// Host names take the form "<lc>#<i>"; the returned Result keys hosts by
// those names and the placement by BE instance names "<be>#<i>".
func RunReplicated(cfg Config, replicas int, mgmt servermgr.LCPolicy) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	if replicas < 1 {
		return Result{}, fmt.Errorf("cluster: replicas must be at least 1, got %d", replicas)
	}

	nBE0, nLC0 := len(cfg.BE), len(cfg.LC)
	models := make(map[string]*utility.Model, len(cfg.Models)+(nBE0+nLC0)*replicas)
	for k, v := range cfg.Models {
		models[k] = v
	}
	instance := func(base *workload.Spec, replica int) *workload.Spec {
		c := *base
		c.Name = fmt.Sprintf("%s#%d", base.Name, replica)
		models[c.Name] = cfg.Models[base.Name]
		return &c
	}
	lc := make([]*workload.Spec, nLC0*replicas)
	for j := range lc {
		lc[j] = instance(cfg.LC[j%nLC0], j/nLC0)
	}
	be := make([]*workload.Spec, nBE0*replicas)
	for i := range be {
		be[i] = instance(cfg.BE[i%nBE0], i/nBE0)
	}
	sh, err := NewSharded(MatrixConfig{
		Machine: cfg.Machine, LC: lc, BE: be, Models: models,
		Parallel: cfg.Parallel,
	}, ShardSettings{PodSize: nLC0})
	if err != nil {
		return Result{}, err
	}
	placement, _, err := sh.Solve(cfg.Trace.Tracer(cfg.TraceLabel+"cluster"), simEpoch())
	if err != nil {
		return Result{}, err
	}
	nLC := nLC0 * replicas

	// Invert: each host gets at most one BE spec.
	beByHost := make(map[string]*workload.Spec, len(be))
	for beInst, lcInst := range placement {
		// Strip the "#k" suffix to recover the spec name.
		beName := beInst
		for k := len(beInst) - 1; k >= 0; k-- {
			if beInst[k] == '#' {
				beName = beInst[:k]
				break
			}
		}
		spec, err := findSpec(cfg.BE, beName)
		if err != nil {
			return Result{}, err
		}
		if _, dup := beByHost[lcInst]; dup {
			return Result{}, fmt.Errorf("cluster: two BE instances placed on %s", lcInst)
		}
		beByHost[lcInst] = spec
	}

	engine, err := sim.NewEngine(cfg.Tick)
	if err != nil {
		return Result{}, err
	}
	var hosts []*sim.Host
	for j := 0; j < nLC; j++ {
		lc := cfg.LC[j%len(cfg.LC)]
		hostName := fmt.Sprintf("%s#%d", lc.Name, j/nLC0)
		host, err := sim.NewHost(sim.HostConfig{
			Name:    hostName,
			Machine: cfg.Machine,
			LC:      lc,
			BE:      beByHost[hostName],
			Trace:   workload.UniformSweep(cfg.Dwell),
			Seed:    cfg.Seed + int64(j)*977,
		})
		if err != nil {
			return Result{}, err
		}
		if err := engine.AddHost(host); err != nil {
			return Result{}, err
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host:        host,
			Model:       cfg.Models[lc.Name],
			Policy:      mgmt,
			TargetSlack: cfg.TargetSlack,
			Seed:        cfg.Seed + int64(j)*389,
			PlannerOff:  cfg.PlannerOff,
		})
		if err != nil {
			return Result{}, err
		}
		if err := mgr.Attach(engine); err != nil {
			return Result{}, err
		}
		hosts = append(hosts, host)
	}
	if err := engine.Run(workload.UniformSweep(cfg.Dwell).Duration()); err != nil {
		return Result{}, err
	}

	res := Result{
		Placement: placement,
		Hosts:     make(map[string]sim.Metrics, len(hosts)),
	}
	var normSum float64
	var normCount int
	var utilSum float64
	for _, h := range hosts {
		m := h.Metrics()
		res.Hosts[h.Name()] = m
		res.TotalEnergyKWh += m.EnergyKWh
		res.TotalBEOps += m.BEOps
		utilSum += m.PowerUtil
		if m.SLOViolFrac > res.SLOViolFrac {
			res.SLOViolFrac = m.SLOViolFrac
		}
		if be := h.BE(); be != nil {
			normSum += m.BEMeanThr / be.PeakLoad
			normCount++
		}
	}
	res.MeanPowerUtil = utilSum / float64(len(hosts))
	if normCount > 0 {
		res.BENormThroughput = normSum / float64(normCount)
	}
	return res, nil
}

func findSpec(specs []*workload.Spec, name string) (*workload.Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown spec %q", name)
}
