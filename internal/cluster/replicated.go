package cluster

import (
	"fmt"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

// RunReplicated evaluates a datacenter-scale variant of the evaluation:
// each of the LC clusters runs `replicas` servers and each BE application
// submits `replicas` instances (Section II-A's datacenter "comprising of
// multiple such clusters"). The performance matrix is replicated
// block-wise, solved exactly with the Hungarian method (the LP grows
// quadratically in variables and is no longer the cheap option at this
// size), and the full placement is simulated.
//
// Host names take the form "<lc>#<i>"; the returned Result keys hosts by
// those names and the placement by BE instance names "<be>#<i>".
func RunReplicated(cfg Config, replicas int, mgmt servermgr.LCPolicy) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	if replicas < 1 {
		return Result{}, fmt.Errorf("cluster: replicas must be at least 1, got %d", replicas)
	}
	base, err := BuildMatrix(MatrixConfig{
		Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models,
		Parallel: cfg.Parallel,
	})
	if err != nil {
		return Result{}, err
	}

	nBE := len(cfg.BE) * replicas
	nLC := len(cfg.LC) * replicas
	value := make([][]float64, nBE)
	for i := range value {
		value[i] = make([]float64, nLC)
		for j := range value[i] {
			value[i][j] = base.Value[i%len(cfg.BE)][j%len(cfg.LC)]
		}
	}
	mx := &Matrix{Value: value}
	for i := 0; i < nBE; i++ {
		mx.BENames = append(mx.BENames, fmt.Sprintf("%s#%d", cfg.BE[i%len(cfg.BE)].Name, i/len(cfg.BE)))
	}
	for j := 0; j < nLC; j++ {
		mx.LCNames = append(mx.LCNames, fmt.Sprintf("%s#%d", cfg.LC[j%len(cfg.LC)].Name, j/len(cfg.LC)))
	}
	placement, _, err := mx.Solve("hungarian")
	if err != nil {
		return Result{}, err
	}

	// Invert: each host gets at most one BE spec.
	beByHost := make(map[string]*workload.Spec, nBE)
	for beInst, lcInst := range placement {
		// Strip the "#k" suffix to recover the spec name.
		beName := beInst
		for k := len(beInst) - 1; k >= 0; k-- {
			if beInst[k] == '#' {
				beName = beInst[:k]
				break
			}
		}
		spec, err := findSpec(cfg.BE, beName)
		if err != nil {
			return Result{}, err
		}
		if _, dup := beByHost[lcInst]; dup {
			return Result{}, fmt.Errorf("cluster: two BE instances placed on %s", lcInst)
		}
		beByHost[lcInst] = spec
	}

	engine, err := sim.NewEngine(cfg.Tick)
	if err != nil {
		return Result{}, err
	}
	var hosts []*sim.Host
	for j := 0; j < nLC; j++ {
		lc := cfg.LC[j%len(cfg.LC)]
		hostName := mx.LCNames[j]
		host, err := sim.NewHost(sim.HostConfig{
			Name:    hostName,
			Machine: cfg.Machine,
			LC:      lc,
			BE:      beByHost[hostName],
			Trace:   workload.UniformSweep(cfg.Dwell),
			Seed:    cfg.Seed + int64(j)*977,
		})
		if err != nil {
			return Result{}, err
		}
		if err := engine.AddHost(host); err != nil {
			return Result{}, err
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host:        host,
			Model:       cfg.Models[lc.Name],
			Policy:      mgmt,
			TargetSlack: cfg.TargetSlack,
			Seed:        cfg.Seed + int64(j)*389,
			PlannerOff:  cfg.PlannerOff,
		})
		if err != nil {
			return Result{}, err
		}
		if err := mgr.Attach(engine); err != nil {
			return Result{}, err
		}
		hosts = append(hosts, host)
	}
	if err := engine.Run(workload.UniformSweep(cfg.Dwell).Duration()); err != nil {
		return Result{}, err
	}

	res := Result{
		Placement: placement,
		Hosts:     make(map[string]sim.Metrics, len(hosts)),
	}
	var normSum float64
	var normCount int
	var utilSum float64
	for _, h := range hosts {
		m := h.Metrics()
		res.Hosts[h.Name()] = m
		res.TotalEnergyKWh += m.EnergyKWh
		res.TotalBEOps += m.BEOps
		utilSum += m.PowerUtil
		if m.SLOViolFrac > res.SLOViolFrac {
			res.SLOViolFrac = m.SLOViolFrac
		}
		if be := h.BE(); be != nil {
			normSum += m.BEMeanThr / be.PeakLoad
			normCount++
		}
	}
	res.MeanPowerUtil = utilSum / float64(len(hosts))
	if normCount > 0 {
		res.BENormThroughput = normSum / float64(normCount)
	}
	return res, nil
}

func findSpec(specs []*workload.Spec, name string) (*workload.Spec, error) {
	for _, s := range specs {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("cluster: unknown spec %q", name)
}
