package cluster

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"pocolo/internal/budget"
	"pocolo/internal/budget/tree"
	"pocolo/internal/invariant"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

// BudgetConfig puts a cluster run under a power budget. With only TotalW
// set, the flat budget.Budgeter divides one cluster-wide number; with
// Tree set, the hierarchical budget/tree reallocator enforces nested
// bounds (host ≤ rack ≤ row ≤ DC). Budgeted runs share one engine across
// all hosts — the budgeter's rebalance must observe every meter in
// lockstep — and always bypass the sweep memo.
type BudgetConfig struct {
	// TotalW is the flat cluster budget in watts (ignored when Tree is
	// set).
	TotalW float64
	// Policy selects the flat division rule (default budget.EqualSplit).
	Policy budget.Policy
	// Tree, when non-empty, is a budget-tree spec (see tree.Parse) whose
	// leaves name the cluster's LC servers.
	Tree string
	// Period is the rebalance interval (default 5 s).
	Period time.Duration
	// Smoothing and MarginW tune the demand estimator (nil = defaults).
	Smoothing *float64
	MarginW   *float64
	// BrownoutNode/BrownoutFrac/BrownoutAt schedule a mid-run budget cut:
	// at BrownoutAt into the run, BrownoutNode's budget drops by
	// BrownoutFrac (0.3 = −30%). Tree mode only; BrownoutNode defaults to
	// the tree root and BrownoutAt to halfway through the run.
	BrownoutNode string
	BrownoutFrac float64
	BrownoutAt   time.Duration
}

func (b *BudgetConfig) validate() error {
	if b.Tree == "" && b.TotalW <= 0 {
		return errors.New("cluster: budget needs TotalW or Tree")
	}
	if b.Period < 0 {
		return errors.New("cluster: budget period must be positive")
	}
	if b.BrownoutFrac < 0 || b.BrownoutFrac >= 1 {
		return errors.New("cluster: brownout fraction outside [0, 1)")
	}
	if b.BrownoutFrac > 0 && b.Tree == "" {
		return errors.New("cluster: brownouts need a budget tree")
	}
	if b.BrownoutAt < 0 {
		return errors.New("cluster: brownout time must be non-negative")
	}
	return nil
}

// ParseBudgetFlags assembles a BudgetConfig from the CLI flag values
// shared by pocolo-sim and pocolo-experiments. It returns nil when no
// budget was requested (budgetW == 0 and no tree spec). A tree spec
// starting with '@' is read from the named file.
func ParseBudgetFlags(budgetW float64, policy, treeSpec string, period time.Duration, brownoutFrac float64, brownoutAt time.Duration, brownoutNode string) (*BudgetConfig, error) {
	if budgetW == 0 && treeSpec == "" {
		if brownoutFrac != 0 {
			return nil, errors.New("cluster: -brownout needs -budget-tree")
		}
		return nil, nil
	}
	if strings.HasPrefix(treeSpec, "@") {
		raw, err := os.ReadFile(treeSpec[1:])
		if err != nil {
			return nil, err
		}
		treeSpec = strings.TrimSpace(string(raw))
	}
	bc := &BudgetConfig{
		TotalW:       budgetW,
		Tree:         treeSpec,
		Period:       period,
		BrownoutFrac: brownoutFrac,
		BrownoutAt:   brownoutAt,
		BrownoutNode: brownoutNode,
	}
	switch policy {
	case "", "equal":
		bc.Policy = budget.EqualSplit
	case "demand":
		bc.Policy = budget.DemandProportional
	default:
		return nil, fmt.Errorf("cluster: unknown budget policy %q (want equal or demand)", policy)
	}
	if treeSpec != "" {
		// Fail fast on an unparseable tree instead of deep inside the run.
		if _, err := tree.Parse(treeSpec); err != nil {
			return nil, err
		}
	}
	if err := bc.validate(); err != nil {
		return nil, err
	}
	return bc, nil
}

// BudgetResult is the budget-specific slice of a cluster Result.
type BudgetResult struct {
	// Shares holds the final installed per-server budgets by LC name.
	Shares map[string]float64
	// Rebalances counts the divisions installed over the run.
	Rebalances int
	// Cuts counts runtime budget mutations (brownouts).
	Cuts int
	// NodeBudgets snapshots the end-of-run budget of every tree node
	// (nil for flat budgets).
	NodeBudgets map[string]float64
}

// runBudgetedPlacement is the shared-engine twin of RunPlacement: every
// host and manager steps on one engine so the attached budgeter can read
// all meters and install all caps in lockstep each period. A scheduled
// brownout splits the run at the cut point — the engine is resumable, so
// the two chunks are bit-identical to one uninterrupted run plus the
// mutation.
func runBudgetedPlacement(cfg Config, placement map[string]string, mgmt servermgr.LCPolicy) (Result, error) {
	bc := cfg.Budget
	if err := bc.validate(); err != nil {
		return Result{}, err
	}
	beBy := make(map[string]*workload.Spec)
	for _, b := range cfg.BE {
		lcName, ok := placement[b.Name]
		if !ok {
			return Result{}, fmt.Errorf("cluster: placement misses BE app %s", b.Name)
		}
		if _, dup := beBy[lcName]; dup {
			return Result{}, fmt.Errorf("cluster: two BE apps placed on %s", lcName)
		}
		beBy[lcName] = b
	}

	duration := workload.UniformSweep(cfg.Dwell).Duration()
	engine, err := sim.NewEngine(cfg.Tick)
	if err != nil {
		return Result{}, err
	}
	hosts := make([]*sim.Host, len(cfg.LC))
	managers := make([]*servermgr.Manager, len(cfg.LC))
	for i, lc := range cfg.LC {
		host, err := sim.NewHost(sim.HostConfig{
			Name:       lc.Name,
			Machine:    cfg.Machine,
			LC:         lc,
			BE:         beBy[lc.Name],
			Trace:      workload.UniformSweep(cfg.Dwell),
			Seed:       cfg.Seed + int64(i)*977,
			SeriesHint: seriesHint(duration, cfg.Tick),
		})
		if err != nil {
			return Result{}, err
		}
		if err := engine.AddHost(host); err != nil {
			return Result{}, err
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host:        host,
			Model:       cfg.Models[lc.Name],
			Policy:      mgmt,
			TargetSlack: cfg.TargetSlack,
			Seed:        cfg.Seed + int64(i)*389,
			PlannerOff:  cfg.PlannerOff,
			Tracer:      cfg.Trace.Tracer(cfg.TraceLabel + lc.Name),
		})
		if err != nil {
			return Result{}, err
		}
		if err := mgr.Attach(engine); err != nil {
			return Result{}, err
		}
		hosts[i] = host
		managers[i] = mgr
	}

	// Install the budget authority: flat budgeter or tree reallocator.
	var (
		realloc *tree.Reallocator
		flat    *budget.Budgeter
	)
	if bc.Tree != "" {
		tr, err := tree.Parse(bc.Tree)
		if err != nil {
			return Result{}, err
		}
		realloc, err = tree.New(tree.Config{
			Tree:      tr,
			Hosts:     hosts,
			Managers:  managers,
			Period:    bc.Period,
			Smoothing: bc.Smoothing,
			MarginW:   bc.MarginW,
			Tracer:    cfg.Trace.Tracer(cfg.TraceLabel + "budget"),
		})
		if err != nil {
			return Result{}, err
		}
	} else {
		flat, err = budget.New(budget.Config{
			TotalW:    bc.TotalW,
			Hosts:     hosts,
			Managers:  managers,
			Policy:    bc.Policy,
			Period:    bc.Period,
			Smoothing: bc.Smoothing,
			MarginW:   bc.MarginW,
		})
		if err != nil {
			return Result{}, err
		}
	}

	var harness *invariant.Harness
	if cfg.Invariants {
		harness = invariant.NewHarness()
		for i, host := range hosts {
			if err := harness.Watch(host, managers[i]); err != nil {
				return Result{}, err
			}
		}
		if realloc != nil {
			if err := harness.Register(invariant.NewTreeConservation(realloc)); err != nil {
				return Result{}, err
			}
		}
		if err := harness.Bind(engine); err != nil {
			return Result{}, err
		}
	}

	// Attach after the managers so the initial division lands on fully
	// constructed hosts, then run — in two chunks around a scheduled
	// brownout.
	if realloc != nil {
		if err := realloc.Attach(engine); err != nil {
			return Result{}, err
		}
	} else {
		if err := flat.Attach(engine); err != nil {
			return Result{}, err
		}
	}
	chunks := []time.Duration{duration}
	if bc.BrownoutFrac > 0 {
		at := bc.BrownoutAt
		if at == 0 {
			at = duration / 2
		}
		if at < duration {
			chunks = []time.Duration{at, duration - at}
		}
	}
	for ci, chunk := range chunks {
		if ci == 1 {
			node := bc.BrownoutNode
			if node == "" {
				node = realloc.Tree().Root().Name
			}
			orig := realloc.NodeBudgets()[node]
			if orig <= 0 {
				return Result{}, fmt.Errorf("cluster: brownout node %q has no budget", node)
			}
			cut := orig * (1 - bc.BrownoutFrac)
			if err := realloc.SetBudget(engine.Now(), node, cut, "brownout"); err != nil {
				return Result{}, err
			}
		}
		if chunk <= 0 {
			continue
		}
		if err := engine.Run(chunk); err != nil {
			return Result{}, err
		}
	}
	if harness != nil {
		if err := harness.Err(); err != nil {
			return Result{}, fmt.Errorf("cluster: budgeted run: %w", err)
		}
	}

	res := Result{
		Placement: placement,
		Hosts:     make(map[string]sim.Metrics, len(cfg.LC)),
		Budget:    &BudgetResult{Shares: make(map[string]float64, len(cfg.LC))},
	}
	var normSum float64
	var normCount int
	var utilSum float64
	for i, lc := range cfg.LC {
		m := hosts[i].Metrics()
		res.Hosts[lc.Name] = m
		res.TotalEnergyKWh += m.EnergyKWh
		res.TotalBEOps += m.BEOps
		utilSum += m.PowerUtil
		if m.SLOViolFrac > res.SLOViolFrac {
			res.SLOViolFrac = m.SLOViolFrac
		}
		if be := beBy[lc.Name]; be != nil {
			normSum += m.BEMeanThr / be.PeakLoad
			normCount++
		}
	}
	res.MeanPowerUtil = utilSum / float64(len(cfg.LC))
	if normCount > 0 {
		res.BENormThroughput = normSum / float64(normCount)
	}
	if realloc != nil {
		shares := realloc.Shares()
		for i, name := range realloc.Tree().Hosts() {
			res.Budget.Shares[name] = shares[i]
		}
		res.Budget.Rebalances = realloc.Rebalances()
		res.Budget.Cuts = realloc.Cuts()
		res.Budget.NodeBudgets = realloc.NodeBudgets()
	} else {
		shares := flat.Shares()
		for i, lc := range cfg.LC {
			res.Budget.Shares[lc.Name] = shares[i]
		}
		res.Budget.Rebalances = flat.Rebalances()
	}
	return res, nil
}
