package cluster

import (
	"reflect"
	"testing"

	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

func cloneSpec(s *workload.Spec) *workload.Spec {
	c := *s
	return &c
}

func cloneSpecs(ss []*workload.Spec) []*workload.Spec {
	out := make([]*workload.Spec, len(ss))
	for i, s := range ss {
		out[i] = cloneSpec(s)
	}
	return out
}

func matrixCopy(mx *Matrix) [][]float64 {
	out := make([][]float64, len(mx.Value))
	for i, row := range mx.Value {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

func TestMatrixBuilderMatchesBuildMatrix(t *testing.T) {
	cfg := fixture(t)
	mcfg := MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models}

	// Ground truth with the memo disabled: every cell evaluated.
	prev := SetCellMemo(false)
	defer SetCellMemo(prev)
	want, err := BuildMatrix(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	SetCellMemo(true)
	ResetCellMemo()
	b, err := NewMatrixBuilder(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Matrix(), want) {
		t.Error("builder matrix differs from memo-off BuildMatrix")
	}
	// A second builder over the same inputs must be all memo hits.
	before := b.Stats()
	b2, err := NewMatrixBuilder(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Stats().CellsComputed != 0 {
		t.Errorf("second build computed %d cells, want 0", b2.Stats().CellsComputed)
	}
	if !reflect.DeepEqual(b2.Matrix(), want) {
		t.Error("memo-served matrix differs")
	}
	if before.CellsComputed == 0 {
		t.Error("first build computed no cells")
	}
}

func TestMatrixBuilderMemoCollapsesIdenticalHosts(t *testing.T) {
	cfg := fixture(t)
	// Four per-host instances of the same LC spec: one distinct column
	// fingerprint, so each BE row costs exactly one evaluation.
	lc := []*workload.Spec{
		cloneSpec(cfg.LC[0]), cloneSpec(cfg.LC[0]),
		cloneSpec(cfg.LC[0]), cloneSpec(cfg.LC[0]),
	}
	SetCellMemo(true)
	ResetCellMemo()
	b, err := NewMatrixBuilder(MatrixConfig{Machine: cfg.Machine, LC: lc, BE: cfg.BE[:2], Models: cfg.Models})
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.CellsComputed != 2 {
		t.Errorf("CellsComputed = %d, want 2 (one per BE model)", st.CellsComputed)
	}
	if st.CellsReused != 6 {
		t.Errorf("CellsReused = %d, want 6", st.CellsReused)
	}
	for i := range b.Matrix().Value {
		for j := 1; j < 4; j++ {
			if b.Matrix().Value[i][j] != b.Matrix().Value[i][0] {
				t.Fatalf("identical hosts got different cells at row %d", i)
			}
		}
	}
}

func TestMatrixBuilderRefreshDelta(t *testing.T) {
	cfg := fixture(t)
	lc := cloneSpecs(cfg.LC) // private copies so cap mutations stay local
	mcfg := MatrixConfig{Machine: cfg.Machine, LC: lc, BE: cfg.BE, Models: cfg.Models}
	SetCellMemo(true)
	ResetCellMemo()
	b, err := NewMatrixBuilder(mcfg)
	if err != nil {
		t.Fatal(err)
	}

	// No input drift: zero work, zero changes.
	res, err := b.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != (DeltaStats{}) || res.ChangedRows != nil || res.ChangedCols != nil {
		t.Errorf("idle refresh did work: %+v", res)
	}

	// One host's cap changes: only that column is recomputed — the
	// asserted delta property. With 4 BE rows that is exactly 4
	// evaluations (all row models are distinct), and no other cell is
	// touched.
	old := matrixCopy(b.Matrix())
	lc[2].ProvisionedPowerW -= 30
	res, err = b.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.CellsComputed + res.Stats.CellsReused; got != len(cfg.BE) {
		t.Errorf("refresh touched %d cells, want %d (one column)", got, len(cfg.BE))
	}
	if !reflect.DeepEqual(res.ChangedCols, []int{2}) {
		t.Errorf("ChangedCols = %v, want [2]", res.ChangedCols)
	}
	if len(res.ChangedRows) != 0 {
		t.Errorf("ChangedRows = %v, want none", res.ChangedRows)
	}
	for i := range old {
		for j := range old[i] {
			same := b.Matrix().Value[i][j] == old[i][j]
			if j == 2 && same {
				t.Errorf("cell (%d, 2) unchanged by cap cut", i)
			}
			if j != 2 && !same {
				t.Errorf("cell (%d, %d) changed outside the dirty column", i, j)
			}
		}
	}
	// The refreshed matrix must equal a from-scratch build of the new
	// inputs.
	want, err := BuildMatrix(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Matrix().Value, want.Value) {
		t.Error("refreshed matrix differs from from-scratch build")
	}

	// Reverting the cap must be pure memo reuse: the old fingerprint's
	// cells are still cached under the original interned id.
	lc[2].ProvisionedPowerW += 30
	res, err = b.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CellsComputed != 0 {
		t.Errorf("revert computed %d cells, want 0 (memo round-trip)", res.Stats.CellsComputed)
	}

	// A model replacement dirties its row.
	models := make(map[string]*utility.Model, len(cfg.Models))
	for k, v := range cfg.Models {
		models[k] = v
	}
	nudged := *cfg.Models[cfg.BE[1].Name]
	nudged.Alpha0 *= 1.05
	models[cfg.BE[1].Name] = &nudged
	b.models = models
	res, err = b.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.ChangedRows, []int{1}) {
		t.Errorf("ChangedRows = %v, want [1]", res.ChangedRows)
	}
	if len(res.ChangedCols) != 0 {
		t.Errorf("ChangedCols = %v, want none", res.ChangedCols)
	}
	if got := res.Stats.CellsComputed + res.Stats.CellsReused; got != len(lc) {
		t.Errorf("refresh touched %d cells, want %d (one row)", got, len(lc))
	}
}

func TestMatrixBuilderAddRemoveRow(t *testing.T) {
	cfg := fixture(t)
	SetCellMemo(true)
	ResetCellMemo()
	b, err := NewMatrixBuilder(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE[:2], Models: cfg.Models})
	if err != nil {
		t.Fatal(err)
	}
	i, err := b.AddRow(cfg.BE[2])
	if err != nil {
		t.Fatal(err)
	}
	if i != 2 || b.Rows() != 3 {
		t.Fatalf("AddRow index %d rows %d", i, b.Rows())
	}
	want, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE[:3], Models: cfg.Models})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b.Matrix().Value, want.Value) {
		t.Error("matrix after AddRow differs from from-scratch build")
	}
	// Swap-remove row 0: old row 2 takes its place.
	movedName := b.Matrix().BENames[2]
	movedRow := append([]float64(nil), b.Matrix().Value[2]...)
	if err := b.RemoveRow(0); err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 2 || b.Matrix().BENames[0] != movedName {
		t.Fatalf("after RemoveRow: rows=%d names=%v", b.Rows(), b.Matrix().BENames)
	}
	if !reflect.DeepEqual(b.Matrix().Value[0], movedRow) {
		t.Error("swap-removed row values not preserved")
	}
	if err := b.RemoveRow(5); err == nil {
		t.Error("out-of-range RemoveRow accepted")
	}
}

func TestMatrixBuilderEmptyRows(t *testing.T) {
	cfg := fixture(t)
	b, err := NewMatrixBuilder(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, Models: cfg.Models})
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 0 || b.Cols() != len(cfg.LC) {
		t.Fatalf("rows=%d cols=%d", b.Rows(), b.Cols())
	}
	if res, err := b.Refresh(); err != nil || res.Stats != (DeltaStats{}) {
		t.Fatalf("empty refresh: %+v, %v", res, err)
	}
	if _, err := b.AddRow(cfg.BE[0]); err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 1 {
		t.Fatalf("rows = %d after AddRow", b.Rows())
	}
}

func TestCellMemoControls(t *testing.T) {
	cfg := fixture(t)
	mcfg := MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models}
	SetCellMemo(true)
	ResetCellMemo()
	if _, err := NewMatrixBuilder(mcfg); err != nil {
		t.Fatal(err)
	}
	entries, _, misses := CellMemoStats()
	if entries == 0 || misses == 0 {
		t.Fatalf("expected memo population, got entries=%d misses=%d", entries, misses)
	}
	if _, err := NewMatrixBuilder(mcfg); err != nil {
		t.Fatal(err)
	}
	if _, hits, _ := CellMemoStats(); hits == 0 {
		t.Error("expected memo hits on rebuild")
	}
	ResetCellMemo()
	if entries, hits, misses := CellMemoStats(); entries != 0 || hits != 0 || misses != 0 {
		t.Errorf("reset left entries=%d hits=%d misses=%d", entries, hits, misses)
	}
	// Disabled: every build evaluates every distinct cell again, and the
	// map stays empty.
	prev := SetCellMemo(false)
	defer SetCellMemo(prev)
	b, err := NewMatrixBuilder(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stats().CellsComputed == 0 {
		t.Error("disabled memo served cells")
	}
	if entries, _, _ := CellMemoStats(); entries != 0 {
		t.Errorf("disabled memo stored %d entries", entries)
	}
}
