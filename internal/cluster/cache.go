package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// The sweep memo caches finished cluster and pair runs process-wide. Every
// simulation here is a pure function of its configuration — machine, specs,
// fitted models, dwell, tick, and seed fully determine the noise streams
// and therefore the result — so two runs with identical fingerprints are
// interchangeable. The evaluation suite leans on this: Fig. 14's sixteen
// RunPair sweeps are simulated once and shared across repeated figure
// regenerations (and with the examples and the public API), and the three
// policy runs behind Figs. 12/13/15 are shared across fresh Suites with the
// same seed instead of re-simulated per figure.
//
// The memo deep-copies on both store and load, so callers may mutate what
// they get back. Disable it (SetMemo) when measuring raw simulation cost or
// when proving sequential/parallel equivalence on live runs.
var memo = struct {
	sync.Mutex
	enabled      bool
	pairs        map[string]PairResult
	placements   map[string]Result
	hits, misses int
}{
	enabled:    true,
	pairs:      make(map[string]PairResult),
	placements: make(map[string]Result),
}

// memoLimit bounds each memo map; a full map is cleared wholesale (the
// workload is a small set of configs hit many times, not a scan).
const memoLimit = 4096

// SetMemo enables or disables the process-wide run memo. Disabling also
// clears it. Returns the previous setting.
func SetMemo(enabled bool) bool {
	memo.Lock()
	defer memo.Unlock()
	prev := memo.enabled
	memo.enabled = enabled
	if !enabled {
		memo.pairs = make(map[string]PairResult)
		memo.placements = make(map[string]Result)
	}
	return prev
}

// ResetMemo clears the memo and its counters without changing whether it
// is enabled.
func ResetMemo() {
	memo.Lock()
	defer memo.Unlock()
	memo.pairs = make(map[string]PairResult)
	memo.placements = make(map[string]Result)
	memo.hits, memo.misses = 0, 0
}

// MemoStats reports cache hits and misses since the last reset.
func MemoStats() (hits, misses int) {
	memo.Lock()
	defer memo.Unlock()
	return memo.hits, memo.misses
}

// fingerprintConfig writes the cacheable identity of a cluster Config: the
// machine, dwell, tick, seed, slack guard, shard layout, and every
// involved spec and fitted model by value. Parallel is deliberately
// excluded — worker count must not change results. Invariants and PlannerOff are included even
// though neither perturbs results (the planner is bit-identical to the
// exact search): a run requesting invariant checks or the exact search
// must not silently satisfy itself from a cache entry produced in the
// other mode.
func fingerprintConfig(w *strings.Builder, cfg *Config) {
	// Shard is included because the pod layout changes the POColo
	// placement: a result computed under one layout must not satisfy a
	// request made under another.
	fmt.Fprintf(w, "m=%+v|dwell=%d|tick=%d|seed=%d|slack=%g|inv=%t|planner=%t|shard=%+v", cfg.Machine, cfg.Dwell, cfg.Tick, cfg.Seed, cfg.TargetSlack, cfg.Invariants, cfg.PlannerOff, cfg.Shard)
	writeSpecs := func(label string, specs []*workload.Spec) {
		fmt.Fprintf(w, "|%s=", label)
		for _, s := range specs {
			fmt.Fprintf(w, "%+v;", *s)
		}
	}
	writeSpecs("lc", cfg.LC)
	writeSpecs("be", cfg.BE)
	names := make([]string, 0, len(cfg.Models))
	for n := range cfg.Models {
		names = append(names, n)
	}
	sort.Strings(names)
	w.WriteString("|models=")
	for _, n := range names {
		writeModel(w, n, cfg.Models[n])
	}
}

func writeModel(w *strings.Builder, name string, m *utility.Model) {
	if m == nil {
		fmt.Fprintf(w, "%s:nil;", name)
		return
	}
	fmt.Fprintf(w, "%s:%+v;", name, *m)
}

// placementKey fingerprints a RunPlacement call.
func placementKey(cfg *Config, placement map[string]string, mgmt servermgr.LCPolicy) string {
	var w strings.Builder
	w.Grow(2048)
	fmt.Fprintf(&w, "placement|mgmt=%d|", mgmt)
	bes := make([]string, 0, len(placement))
	for be := range placement {
		bes = append(bes, be)
	}
	sort.Strings(bes)
	for _, be := range bes {
		fmt.Fprintf(&w, "%s->%s;", be, placement[be])
	}
	fingerprintConfig(&w, cfg)
	return w.String()
}

// pairKey fingerprints a RunPair call.
func pairKey(cfg *Config, lc, be *workload.Spec) string {
	var w strings.Builder
	w.Grow(2048)
	fmt.Fprintf(&w, "pair|lc=%+v|be=%+v|", *lc, *be)
	fingerprintConfig(&w, cfg)
	return w.String()
}

func memoGetPlacement(key string) (Result, bool) {
	memo.Lock()
	defer memo.Unlock()
	if !memo.enabled {
		return Result{}, false
	}
	res, ok := memo.placements[key]
	if ok {
		memo.hits++
		return copyResult(res), true
	}
	memo.misses++
	return Result{}, false
}

func memoPutPlacement(key string, res Result) {
	memo.Lock()
	defer memo.Unlock()
	if !memo.enabled {
		return
	}
	if len(memo.placements) >= memoLimit {
		memo.placements = make(map[string]Result)
	}
	memo.placements[key] = copyResult(res)
}

func memoGetPair(key string) (PairResult, bool) {
	memo.Lock()
	defer memo.Unlock()
	if !memo.enabled {
		return PairResult{}, false
	}
	pr, ok := memo.pairs[key]
	if ok {
		memo.hits++
		return copyPairResult(pr), true
	}
	memo.misses++
	return PairResult{}, false
}

func memoPutPair(key string, pr PairResult) {
	memo.Lock()
	defer memo.Unlock()
	if !memo.enabled {
		return
	}
	if len(memo.pairs) >= memoLimit {
		memo.pairs = make(map[string]PairResult)
	}
	memo.pairs[key] = copyPairResult(pr)
}

func copyResult(r Result) Result {
	out := r
	if r.Placement != nil {
		out.Placement = make(map[string]string, len(r.Placement))
		for k, v := range r.Placement {
			out.Placement[k] = v
		}
	}
	if r.Hosts != nil {
		out.Hosts = make(map[string]sim.Metrics, len(r.Hosts))
		for k, v := range r.Hosts {
			out.Hosts[k] = copyMetrics(v)
		}
	}
	return out
}

func copyMetrics(m sim.Metrics) sim.Metrics {
	out := m
	if m.BEOpsBy != nil {
		out.BEOpsBy = make(map[string]float64, len(m.BEOpsBy))
		for k, v := range m.BEOpsBy {
			out.BEOpsBy[k] = v
		}
	}
	return out
}

func copyPairResult(pr PairResult) PairResult {
	out := pr
	out.Loads = append([]float64(nil), pr.Loads...)
	out.TotalNorm = append([]float64(nil), pr.TotalNorm...)
	return out
}
