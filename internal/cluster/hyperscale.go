package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"pocolo/internal/budget/tree"
	"pocolo/internal/machine"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// FleetConfig scales the application catalog to a synthetic fleet: Hosts
// LC server instances and Jobs BE job instances drawn round-robin from a
// few capacity classes, with per-host provisioned-cap jitter. Instances
// of one class share a fitted model, so a fleet of tens of thousands of
// hosts presents only (classes × distinct quantized caps) distinct
// matrix cells to the delta-cell memo.
type FleetConfig struct {
	// Machine is the per-server platform.
	Machine machine.Config
	// LCClasses and BEClasses are the capacity classes instances cycle
	// through; required.
	LCClasses []*workload.Spec
	BEClasses []*workload.Spec
	// Models holds fitted models for every class; required.
	Models map[string]*utility.Model
	// Hosts and Jobs size the fleet; Jobs ≤ Hosts.
	Hosts, Jobs int
	// Seed drives cap jitter and churn selection.
	Seed int64
	// CapJitterFrac is the relative spread of per-host provisioned caps
	// around the class cap (default 0.08). Jittered caps are quantized to
	// whole watts so the distinct column-fingerprint count stays bounded
	// and the delta-cell memo keeps collapsing instances.
	CapJitterFrac float64
	// Shard configures the pod decomposition (zero value = DefaultPodSize
	// pods).
	Shard ShardSettings
	// Parallel bounds the solver worker pool (0 = GOMAXPROCS).
	Parallel int
	// BudgetFrac, when > 0, sizes a per-pod power-budget tree at this
	// fraction of summed provisioned caps (see Fleet.PodBudgets).
	BudgetFrac float64
}

func (c *FleetConfig) validate() error {
	if err := c.Machine.Validate(); err != nil {
		return err
	}
	if len(c.LCClasses) == 0 || len(c.BEClasses) == 0 {
		return errors.New("cluster: fleet needs LC and BE classes")
	}
	if c.Hosts < 1 {
		return fmt.Errorf("cluster: fleet needs at least one host, got %d", c.Hosts)
	}
	if c.Jobs < 0 || c.Jobs > c.Hosts {
		return fmt.Errorf("cluster: %d jobs outside [0, %d hosts]", c.Jobs, c.Hosts)
	}
	for _, s := range append(append([]*workload.Spec{}, c.LCClasses...), c.BEClasses...) {
		if _, ok := c.Models[s.Name]; !ok {
			return fmt.Errorf("cluster: no fitted model for class %s", s.Name)
		}
	}
	if c.CapJitterFrac < 0 || c.CapJitterFrac >= 1 {
		return fmt.Errorf("cluster: cap jitter %v outside [0, 1)", c.CapJitterFrac)
	}
	if c.BudgetFrac < 0 || c.BudgetFrac > 1 {
		return fmt.Errorf("cluster: budget fraction %v outside [0, 1]", c.BudgetFrac)
	}
	return nil
}

// quantizeW rounds a wattage to the 1 W grid. Cap perturbations are
// always quantized before they reach a spec: fingerprints are exact
// strings, so an unquantized drift would mint a fresh column fingerprint
// per host per round and starve the delta-cell memo.
func quantizeW(w float64) float64 { return math.Round(w) }

// driftQuantum quantizes model-drift factors; recurring factors recur as
// fingerprints, so a model that drifts back to a previous operating point
// is served from the memo instead of recomputed.
const driftQuantum = 0.005

// diurnalPeriod is the number of Advance rounds in one simulated day.
const diurnalPeriod = 24

// Fleet is a synthetic hyperscale cluster driven round by round: caps
// drift on a diurnal envelope with per-host jitter, job-class models are
// re-fitted (nudged), and the sharded incremental assignment absorbs the
// changes without from-scratch solves.
type Fleet struct {
	cfg     FleetConfig
	lc      []*workload.Spec
	be      []*workload.Spec
	baseCap []float64 // per host: the class cap before jitter
	beClass []int     // per job: index into cfg.BEClasses
	models  map[string]*utility.Model
	// classModel and classDrift track each BE class's current (possibly
	// nudged) model and quantized drift factor.
	classModel []*utility.Model
	classDrift []float64
	sharded    *Sharded
	rng        *rand.Rand
	round      int
}

// NewFleet instantiates the fleet specs, jitters and quantizes the host
// caps, and builds the sharded solver state.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.CapJitterFrac == 0 {
		cfg.CapJitterFrac = 0.08
	}
	f := &Fleet{
		cfg:        cfg,
		lc:         make([]*workload.Spec, cfg.Hosts),
		be:         make([]*workload.Spec, cfg.Jobs),
		baseCap:    make([]float64, cfg.Hosts),
		beClass:    make([]int, cfg.Jobs),
		models:     make(map[string]*utility.Model, len(cfg.Models)+cfg.Hosts+cfg.Jobs),
		classModel: make([]*utility.Model, len(cfg.BEClasses)),
		classDrift: make([]float64, len(cfg.BEClasses)),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
	for k, v := range cfg.Models {
		f.models[k] = v
	}
	for c := range cfg.BEClasses {
		f.classModel[c] = cfg.Models[cfg.BEClasses[c].Name]
		f.classDrift[c] = 1
	}
	for i := range f.lc {
		class := cfg.LCClasses[i%len(cfg.LCClasses)]
		inst := *class
		inst.Name = fmt.Sprintf("host-%d", i)
		f.baseCap[i] = class.ProvisionedPowerW
		inst.ProvisionedPowerW = quantizeW(class.ProvisionedPowerW * (1 + cfg.CapJitterFrac*(2*f.rng.Float64()-1)))
		f.lc[i] = &inst
		f.models[inst.Name] = cfg.Models[class.Name]
	}
	for i := range f.be {
		c := i % len(cfg.BEClasses)
		class := cfg.BEClasses[c]
		inst := *class
		inst.Name = fmt.Sprintf("job-%d", i)
		f.beClass[i] = c
		f.be[i] = &inst
		f.models[inst.Name] = f.classModel[c]
	}
	sh, err := NewSharded(MatrixConfig{
		Machine: cfg.Machine, LC: f.lc, BE: f.be, Models: f.models,
		Parallel: cfg.Parallel,
	}, cfg.Shard)
	if err != nil {
		return nil, err
	}
	f.sharded = sh
	return f, nil
}

// Sharded exposes the fleet's solver state (Refresh, Rebalance, Solve).
func (f *Fleet) Sharded() *Sharded { return f.sharded }

// Round returns the number of Advance calls so far.
func (f *Fleet) Round() int { return f.round }

// Advance applies one churn round: a churn-fraction of hosts re-jitters
// its provisioned cap on a diurnal envelope (quantized to watts), and
// each BE class independently re-fits its model with probability churn
// (a fresh *Model whose Alpha0 scales by a quantized drift factor, so
// every job of the class re-fingerprints at once). It mutates the specs
// and model map the sharded builders read; call Refresh on the Sharded
// state to absorb the drift. Returns how many hosts and classes changed.
func (f *Fleet) Advance(churn float64) (hostsChanged, classesChanged int) {
	f.round++
	envelope := 1 + 0.05*math.Sin(2*math.Pi*float64(f.round)/diurnalPeriod)
	n := int(churn * float64(len(f.lc)))
	for _, i := range f.rng.Perm(len(f.lc))[:n] {
		jitter := 1 + f.cfg.CapJitterFrac*(2*f.rng.Float64()-1)
		next := quantizeW(f.baseCap[i] * envelope * jitter)
		if next != f.lc[i].ProvisionedPowerW {
			f.lc[i].ProvisionedPowerW = next
			hostsChanged++
		}
	}
	for c := range f.cfg.BEClasses {
		if f.rng.Float64() >= churn {
			continue
		}
		drift := 1 + 0.04*math.Sin(2*math.Pi*float64(f.round)/diurnalPeriod+float64(c))
		drift = math.Round(drift/driftQuantum) * driftQuantum
		if drift == f.classDrift[c] {
			continue
		}
		f.classDrift[c] = drift
		nudged := *f.cfg.Models[f.cfg.BEClasses[c].Name]
		nudged.Alpha0 *= drift
		f.classModel[c] = &nudged
		classesChanged++
	}
	if classesChanged > 0 {
		for i, c := range f.beClass {
			f.models[f.be[i].Name] = f.classModel[c]
		}
	}
	return hostsChanged, classesChanged
}

// PodBudgets composes the pod decomposition with the hierarchical budget
// tree: one leaf per pod under a DC root, every node sized at BudgetFrac
// of the provisioned capacity beneath it (quantized to watts), and the
// root budget divided demand-proportionally over the pods with
// tree.Alloc (demand = occupied-host capacity, floors = idle power). It
// returns the tree spec (parseable by tree.Parse) and the per-pod share
// in watts.
func (f *Fleet) PodBudgets() (string, map[string]float64, error) {
	if f.cfg.BudgetFrac <= 0 {
		return "", nil, errors.New("cluster: fleet has no budget fraction")
	}
	nPods := f.sharded.Pods()
	podSize := f.cfg.Shard.podSize()
	podCap := make([]float64, nPods)
	podDemand := make([]float64, nPods)
	podFloor := make([]float64, nPods)
	for i, lc := range f.lc {
		p := i / podSize
		podCap[p] += lc.ProvisionedPowerW
		podFloor[p] += f.cfg.Machine.IdlePowerW
	}
	for p := 0; p < nPods; p++ {
		rows, _ := f.sharded.PodDims(p)
		// Demand-weight each pod by the capacity its occupied hosts
		// could draw; empty pods still demand their idle floor.
		podDemand[p] = podFloor[p] + float64(rows)/float64(podSize)*podCap[p]
	}
	var total float64
	var b strings.Builder
	for p := 0; p < nPods; p++ {
		total += podCap[p]
	}
	fmt.Fprintf(&b, "dc:%g{", quantizeW(f.cfg.BudgetFrac*total))
	for p := 0; p < nPods; p++ {
		if p > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "pod-%d:%g", p, quantizeW(f.cfg.BudgetFrac*podCap[p]))
	}
	b.WriteByte('}')
	spec := b.String()
	tr, err := tree.Parse(spec)
	if err != nil {
		return "", nil, fmt.Errorf("cluster: pod budget tree: %w", err)
	}
	shares, err := tr.Alloc(podDemand, podCap, podFloor)
	if err != nil {
		return "", nil, err
	}
	out := make(map[string]float64, nPods)
	for p, s := range shares {
		out[fmt.Sprintf("pod-%d", p)] = quantizeW(s)
	}
	return spec, out, nil
}

// HyperscaleConfig drives RunHyperscale: a fleet, a number of churn
// rounds, and the per-round churn fraction.
type HyperscaleConfig struct {
	Fleet FleetConfig
	// Rounds is the number of churn rounds after the initial solve
	// (default 3).
	Rounds int
	// Churn is the per-round fraction of hosts re-jittered and the
	// per-class model re-fit probability (default 0.1).
	Churn float64
	// Trace, when non-nil, receives per-pod solve summaries with
	// delta-cell counters and rebalance migrations, stamped one simulated
	// minute per round.
	Trace *trace.Tracer
}

// HyperscaleRound reports one churn round.
type HyperscaleRound struct {
	Round int
	// Total is the summed placement value after refresh + rebalance.
	Total float64
	// Moves counts cross-pod migrations.
	Moves int
	// HostsChanged and ClassesChanged report the churn that was applied.
	HostsChanged, ClassesChanged int
	// Refresh counts the matrix delta work the round triggered.
	Refresh DeltaStats
}

// HyperscaleResult summarizes a RunHyperscale scenario.
type HyperscaleResult struct {
	Hosts, Jobs, Pods int
	// InitialTotal is the placement value of the cold solve;
	// FinalTotal after the last churn round.
	InitialTotal, FinalTotal float64
	// Moves is the total cross-pod migration count.
	Moves int
	Rounds []HyperscaleRound
	// BudgetSpec and PodBudgets are set when the fleet has a BudgetFrac:
	// the per-pod budget tree and the end-of-run allocation.
	BudgetSpec string
	PodBudgets map[string]float64
}

// RunHyperscale builds the fleet, solves the initial placement, then
// drives Rounds churn rounds of Advance → Refresh → Rebalance → Solve
// through the sharded incremental path. Each round re-solves only the
// rows and columns the churn actually dirtied.
func RunHyperscale(cfg HyperscaleConfig) (HyperscaleResult, error) {
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	if cfg.Rounds < 0 {
		return HyperscaleResult{}, fmt.Errorf("cluster: %d rounds", cfg.Rounds)
	}
	if cfg.Churn == 0 {
		cfg.Churn = 0.1
	}
	if cfg.Churn < 0 || cfg.Churn > 1 {
		return HyperscaleResult{}, fmt.Errorf("cluster: churn %v outside [0, 1]", cfg.Churn)
	}
	f, err := NewFleet(cfg.Fleet)
	if err != nil {
		return HyperscaleResult{}, err
	}
	stamp := func(round int) time.Time {
		return simEpoch().Add(time.Duration(round) * time.Minute)
	}
	sh := f.Sharded()
	_, initial, err := sh.Solve(cfg.Trace, stamp(0))
	if err != nil {
		return HyperscaleResult{}, err
	}
	res := HyperscaleResult{
		Hosts: cfg.Fleet.Hosts, Jobs: cfg.Fleet.Jobs, Pods: sh.Pods(),
		InitialTotal: initial, FinalTotal: initial,
	}
	for r := 1; r <= cfg.Rounds; r++ {
		hosts, classes := f.Advance(cfg.Churn)
		stats, err := sh.Refresh()
		if err != nil {
			return res, err
		}
		moves, err := sh.Rebalance(cfg.Trace, stamp(r))
		if err != nil {
			return res, err
		}
		_, total, err := sh.Solve(cfg.Trace, stamp(r))
		if err != nil {
			return res, err
		}
		res.Rounds = append(res.Rounds, HyperscaleRound{
			Round: r, Total: total, Moves: moves,
			HostsChanged: hosts, ClassesChanged: classes, Refresh: stats,
		})
		res.FinalTotal = total
		res.Moves += moves
	}
	if cfg.Fleet.BudgetFrac > 0 {
		spec, shares, err := f.PodBudgets()
		if err != nil {
			return res, err
		}
		res.BudgetSpec = spec
		res.PodBudgets = shares
	}
	return res, nil
}
