package cluster

import (
	"math"
	"strings"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// fixture builds the paper's full setup: 8 fitted models on the Table I
// platform. Fitting is deterministic, so build it once.
var fixtureModels map[string]*utility.Model

func fixture(t *testing.T) Config {
	t.Helper()
	cat := workload.MustDefaults()
	cfg := machine.XeonE52650()
	if fixtureModels == nil {
		models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), 42)
		if err != nil {
			t.Fatal(err)
		}
		fixtureModels = models
	}
	return Config{
		Machine: cfg,
		LC:      cat.LC(),
		BE:      cat.BE(),
		Models:  fixtureModels,
		Dwell:   2 * time.Second,
		Seed:    1,
	}
}

func TestDefaultLoadRange(t *testing.T) {
	r := DefaultLoadRange()
	if len(r) != 9 || r[0] != 0.1 || r[8] != 0.9 {
		t.Errorf("range = %v", r)
	}
}

func TestBuildMatrix(t *testing.T) {
	cfg := fixture(t)
	mx, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models})
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.Value) != 4 || len(mx.Value[0]) != 4 {
		t.Fatalf("matrix shape %dx%d", len(mx.Value), len(mx.Value[0]))
	}
	for i, row := range mx.Value {
		for j, v := range row {
			if v <= 0 || math.IsNaN(v) {
				t.Errorf("matrix[%s][%s] = %v", mx.BENames[i], mx.LCNames[j], v)
			}
		}
	}
	idx := func(names []string, want string) int {
		for i, n := range names {
			if n == want {
				return i
			}
		}
		t.Fatalf("missing %s in %v", want, names)
		return -1
	}
	// Complementarity (Section V-C): on the sphinx server (cache-loving
	// primary), core-loving graph should beat cache-loving lstm.
	sj := idx(mx.LCNames, "sphinx")
	if mx.Value[idx(mx.BENames, "graph")][sj] <= mx.Value[idx(mx.BENames, "lstm")][sj] {
		t.Errorf("graph (%v) should beat lstm (%v) on sphinx", mx.Value[idx(mx.BENames, "graph")][sj], mx.Value[idx(mx.BENames, "lstm")][sj])
	}
}

func TestBuildMatrixValidation(t *testing.T) {
	cfg := fixture(t)
	if _, err := BuildMatrix(MatrixConfig{Machine: machine.Config{}, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models}); err == nil {
		t.Error("expected error for bad machine")
	}
	if _, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, BE: cfg.BE, Models: cfg.Models}); err == nil {
		t.Error("expected error for no LC apps")
	}
	if _, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: nil}); err == nil {
		t.Error("expected error for missing models")
	}
	if _, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models, Loads: []float64{2}}); err == nil {
		t.Error("expected error for bad load range")
	}
}

func TestMatrixSolversAgree(t *testing.T) {
	cfg := fixture(t)
	mx, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models})
	if err != nil {
		t.Fatal(err)
	}
	_, lpVal, err := mx.Solve("lp")
	if err != nil {
		t.Fatal(err)
	}
	_, huVal, err := mx.Solve("hungarian")
	if err != nil {
		t.Fatal(err)
	}
	_, exVal, err := mx.Solve("exhaustive")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lpVal-exVal) > 1e-6 || math.Abs(huVal-exVal) > 1e-6 {
		t.Errorf("solver disagreement: lp=%v hungarian=%v exhaustive=%v", lpVal, huVal, exVal)
	}
	if _, _, err := mx.Solve("magic"); err == nil {
		t.Error("expected error for unknown solver")
	}
}

func TestPOColoPlacementMatchesPaper(t *testing.T) {
	// Fig. 14: Pocolo assigns Graph to sphinx, LSTM to img-dnn, and
	// RNN/Pbzip to xapian/TPC-C.
	cfg := fixture(t)
	placement, total, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Errorf("placement value = %v", total)
	}
	if placement["graph"] != "sphinx" {
		t.Errorf("graph placed on %s, want sphinx (placement %v)", placement["graph"], placement)
	}
	if placement["lstm"] != "img-dnn" {
		t.Errorf("lstm placed on %s, want img-dnn (placement %v)", placement["lstm"], placement)
	}
	rest := map[string]bool{placement["rnn"]: true, placement["pbzip"]: true}
	if !rest["xapian"] || !rest["tpcc"] {
		t.Errorf("rnn/pbzip placed on %v, want xapian+tpcc", rest)
	}
}

func TestPlaceRandomIsValidPermutation(t *testing.T) {
	cfg := fixture(t)
	for seed := int64(0); seed < 10; seed++ {
		p := PlaceRandom(cfg.LC, cfg.BE, seed)
		if len(p) != 4 {
			t.Fatalf("placement size %d", len(p))
		}
		used := map[string]bool{}
		for _, lc := range p {
			if used[lc] {
				t.Fatalf("server %s used twice in %v", lc, p)
			}
			used[lc] = true
		}
	}
}

func TestRunPlacementValidation(t *testing.T) {
	cfg := fixture(t)
	if _, err := RunPlacement(cfg, map[string]string{}, servermgr.PowerOptimized); err == nil {
		t.Error("expected error for incomplete placement")
	}
	dup := map[string]string{"lstm": "sphinx", "rnn": "sphinx", "graph": "xapian", "pbzip": "tpcc"}
	if _, err := RunPlacement(cfg, dup, servermgr.PowerOptimized); err == nil {
		t.Error("expected error for doubled-up placement")
	}
	bad := cfg
	bad.BE = append(bad.BE, bad.BE...)
	if _, err := RunPlacement(bad, nil, servermgr.PowerOptimized); err == nil {
		t.Error("expected error for more BE apps than servers")
	}
}

func TestRunPlacementProducesHealthyCluster(t *testing.T) {
	cfg := fixture(t)
	placement, _, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 4 {
		t.Fatalf("hosts = %d", len(res.Hosts))
	}
	if res.SLOViolFrac > 0.10 {
		t.Errorf("SLO violations %.1f%%", res.SLOViolFrac*100)
	}
	if res.BENormThroughput <= 0 || res.BENormThroughput > 1 {
		t.Errorf("BE normalized throughput = %v", res.BENormThroughput)
	}
	if res.MeanPowerUtil <= 0.4 || res.MeanPowerUtil > 1.05 {
		t.Errorf("power utilization = %v", res.MeanPowerUtil)
	}
	if res.TotalEnergyKWh <= 0 || res.TotalBEOps <= 0 {
		t.Errorf("aggregates: %+v", res)
	}
	for _, name := range SortedNames(res.Hosts) {
		if res.Hosts[name].DurationSec <= 0 {
			t.Errorf("host %s has no runtime", name)
		}
	}
}

func TestPolicyOrderingMatchesPaper(t *testing.T) {
	// The headline result (Figs. 12–13): POColo > POM > Random in BE
	// throughput, and Random burns more power than both POM and POColo.
	cfg := fixture(t)
	random, err := Run(cfg, Random)
	if err != nil {
		t.Fatal(err)
	}
	pom, err := Run(cfg, POM)
	if err != nil {
		t.Fatal(err)
	}
	pocolo, err := Run(cfg, POColo)
	if err != nil {
		t.Fatal(err)
	}
	if !(pocolo.BENormThroughput > pom.BENormThroughput) {
		t.Errorf("POColo throughput %.4f not above POM %.4f", pocolo.BENormThroughput, pom.BENormThroughput)
	}
	if !(pom.BENormThroughput > random.BENormThroughput) {
		t.Errorf("POM throughput %.4f not above Random %.4f", pom.BENormThroughput, random.BENormThroughput)
	}
	if !(random.MeanPowerUtil > pom.MeanPowerUtil) {
		t.Errorf("Random power util %.3f not above POM %.3f", random.MeanPowerUtil, pom.MeanPowerUtil)
	}
	if !(random.TotalEnergyKWh > pocolo.TotalEnergyKWh) {
		t.Errorf("Random energy %.4f not above POColo %.4f", random.TotalEnergyKWh, pocolo.TotalEnergyKWh)
	}
	if pocolo.Policy != POColo || random.Policy != Random || pom.Policy != POM {
		t.Error("policy labels wrong")
	}
	if Random.String() != "random" || POM.String() != "pom" || POColo.String() != "pocolo" || Policy(9).String() == "" {
		t.Error("policy strings broken")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{Random, POM, POColo} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	for _, bad := range []string{"", "POM", "lp", "Policy(9)"} {
		if _, err := ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}

func TestRunUnknownPolicy(t *testing.T) {
	cfg := fixture(t)
	if _, err := Run(cfg, Policy(42)); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestRunPair(t *testing.T) {
	cfg := fixture(t)
	cat := workload.MustDefaults()
	lc, _ := cat.ByName("sphinx")
	be, _ := cat.ByName("graph")
	pr, err := RunPair(cfg, lc, be)
	if err != nil {
		t.Fatal(err)
	}
	if pr.LC != "sphinx" || pr.BE != "graph" {
		t.Errorf("pair labels: %+v", pr)
	}
	if len(pr.TotalNorm) != 9 {
		t.Fatalf("got %d load points", len(pr.TotalNorm))
	}
	for i, v := range pr.TotalNorm {
		if v <= 0 || v > 2 {
			t.Errorf("load %.0f%%: total normalized throughput %v out of range", pr.Loads[i]*100, v)
		}
	}
	if pr.Mean <= 0 {
		t.Errorf("mean = %v", pr.Mean)
	}
}

func TestRunReplicated(t *testing.T) {
	cfg := fixture(t)
	cfg.Dwell = time.Second
	res, err := RunReplicated(cfg, 2, servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 8 {
		t.Fatalf("hosts = %d", len(res.Hosts))
	}
	if len(res.Placement) != 8 {
		t.Fatalf("placement = %v", res.Placement)
	}
	// Every BE instance lands on a distinct host, and the pairing mirrors
	// the 1-replica optimum (the matrix is block-constant): each graph
	// instance on a sphinx server, each lstm instance on an img-dnn server.
	used := map[string]bool{}
	for beInst, lcInst := range res.Placement {
		if used[lcInst] {
			t.Errorf("host %s used twice", lcInst)
		}
		used[lcInst] = true
		be := beInst[:strings.IndexByte(beInst, '#')]
		lc := lcInst[:strings.IndexByte(lcInst, '#')]
		switch be {
		case "graph":
			if lc != "sphinx" {
				t.Errorf("graph instance on %s, want sphinx", lc)
			}
		case "lstm":
			if lc != "img-dnn" {
				t.Errorf("lstm instance on %s, want img-dnn", lc)
			}
		}
	}
	if res.BENormThroughput <= 0 {
		t.Errorf("throughput = %v", res.BENormThroughput)
	}
	if res.SLOViolFrac > 0.15 {
		t.Errorf("SLO violations = %v", res.SLOViolFrac)
	}
	// Per-host throughput matches the unreplicated cluster's headline.
	single, err := RunPlacement(cfg, mustPlace(t, cfg), servermgr.PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.BENormThroughput / single.BENormThroughput; rel < 0.9 || rel > 1.1 {
		t.Errorf("replicated throughput %v diverges from single-cluster %v", res.BENormThroughput, single.BENormThroughput)
	}
}

func mustPlace(t *testing.T, cfg Config) map[string]string {
	t.Helper()
	placement, _, err := Place(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return placement
}

func TestRunReplicatedValidation(t *testing.T) {
	cfg := fixture(t)
	if _, err := RunReplicated(cfg, 0, servermgr.PowerOptimized); err == nil {
		t.Error("expected error for zero replicas")
	}
	bad := cfg
	bad.Models = nil
	if _, err := RunReplicated(bad, 1, servermgr.PowerOptimized); err == nil {
		t.Error("expected error for missing models")
	}
}
