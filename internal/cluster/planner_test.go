package cluster

import (
	"reflect"
	"strings"
	"testing"

	"pocolo/internal/servermgr"
)

// TestPlannerClusterEquivalence is the cluster-level golden suite: full
// RunPlacement evaluations (all hosts, both management policies) must be
// bit-identical with the planner on and off. The memo is disabled so both
// runs actually simulate.
func TestPlannerClusterEquivalence(t *testing.T) {
	prev := SetMemo(false)
	defer SetMemo(prev)

	cfg := fixture(t)
	placement := PlaceRandom(cfg.LC, cfg.BE, 9)
	for _, mgmt := range []servermgr.LCPolicy{servermgr.PowerOptimized, servermgr.PowerUnaware} {
		on := cfg
		off := cfg
		off.PlannerOff = true
		resOn, err := RunPlacement(on, placement, mgmt)
		if err != nil {
			t.Fatal(err)
		}
		resOff, err := RunPlacement(off, placement, mgmt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(resOn, resOff) {
			t.Fatalf("%v: planner-on cluster result differs from planner-off:\non:  %+v\noff: %+v", mgmt, resOn, resOff)
		}
	}
}

// TestPlannerInvariantEquivalence reruns the equivalence under the
// invariant harness: planner-on must produce the same (clean) invariant
// outcome and identical metrics.
func TestPlannerInvariantEquivalence(t *testing.T) {
	prev := SetMemo(false)
	defer SetMemo(prev)

	cfg := fixture(t)
	cfg.Invariants = true
	placement := PlaceRandom(cfg.LC, cfg.BE, 9)
	off := cfg
	off.PlannerOff = true
	resOn, err := RunPlacement(cfg, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatalf("planner-on invariant run: %v", err)
	}
	resOff, err := RunPlacement(off, placement, servermgr.PowerOptimized)
	if err != nil {
		t.Fatalf("planner-off invariant run: %v", err)
	}
	if !reflect.DeepEqual(resOn, resOff) {
		t.Fatalf("invariant-checked results differ:\non:  %+v\noff: %+v", resOn, resOff)
	}
}

// TestPlannerMemoKeying checks planner-on and planner-off runs do not
// satisfy each other from the memo: their fingerprints must differ.
func TestPlannerMemoKeying(t *testing.T) {
	cfg := fixture(t)
	off := cfg
	off.PlannerOff = true
	placement := PlaceRandom(cfg.LC, cfg.BE, 9)
	kOn := placementKey(&cfg, placement, servermgr.PowerOptimized)
	kOff := placementKey(&off, placement, servermgr.PowerOptimized)
	if kOn == kOff {
		t.Fatal("planner mode does not participate in the memo fingerprint")
	}
}

// TestBuildMatrixParallel checks the fanned-out matrix construction is
// identical to the sequential path at any worker count, and that model
// validation errors still surface.
func TestBuildMatrixParallel(t *testing.T) {
	cfg := fixture(t)
	seq, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		par, err := BuildMatrix(MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: cfg.Models, Parallel: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("parallel=%d matrix differs from sequential", workers)
		}
	}

	// A missing model must surface the same first (row-major) error from
	// the fanned-out path as from the sequential one.
	broken := MatrixConfig{Machine: cfg.Machine, LC: cfg.LC, BE: cfg.BE, Models: nil, Parallel: 8}
	if _, err := BuildMatrix(broken); err == nil || !strings.Contains(err.Error(), "no fitted model for "+cfg.BE[0].Name) {
		t.Fatalf("missing-model error = %v", err)
	}
}
