package assign

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// validateMatrix checks a value matrix: n workers (rows) assigned to m ≥ n
// tasks (columns), maximizing total value.
func validateMatrix(value [][]float64) (n, m int, err error) {
	n = len(value)
	if n == 0 {
		return 0, 0, errors.New("assign: empty value matrix")
	}
	m = len(value[0])
	for i, row := range value {
		if len(row) != m {
			return 0, 0, fmt.Errorf("assign: ragged value matrix at row %d", i)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
			}
		}
	}
	if m < n {
		return 0, 0, fmt.Errorf("assign: %d workers but only %d tasks", n, m)
	}
	return n, m, nil
}

// total sums the value of an assignment canonically: the selected cells
// are copied out and summed in ascending sorted order. Equal-value
// optima that differ only by permuting identical rows or columns (a
// fleet full of class-shared job models and quantized host caps makes
// such ties routine) then produce bit-identical totals no matter which
// permutation a solver landed on — the property every "value equals
// Hungarian exactly" test and the sequential-vs-auction trace diff rely
// on.
func total(value [][]float64, assignment []int) float64 {
	vals := make([]float64, len(assignment))
	for i, j := range assignment {
		vals[i] = value[i][j]
	}
	return canonicalSum(vals)
}

// canonicalSum sorts vals in place and returns their sum. Sorting first
// fixes the float addition order for any permutation of the same value
// multiset; the inputs are validated finite, so NaN ordering is moot.
func canonicalSum(vals []float64) float64 {
	sort.Float64s(vals)
	t := 0.0
	for _, v := range vals {
		t += v
	}
	return t
}

// Hungarian solves the assignment problem exactly in O(n³) using the
// shortest-augmenting-path (Jonker–Volgenant style) formulation with dual
// potentials. It maximizes total value; the matrix may be rectangular with
// more tasks than workers. The returned slice maps worker i to its task.
func Hungarian(value [][]float64) ([]int, float64, error) {
	n, m, err := validateMatrix(value)
	if err != nil {
		return nil, 0, err
	}
	// Convert to a minimization problem on a cost matrix.
	maxV := value[0][0]
	for _, row := range value {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	// 1-indexed arrays per the classical formulation.
	cost := func(i, j int) float64 { return maxV - value[i-1][j-1] }

	u := make([]float64, n+1)
	v := make([]float64, m+1)
	matchCol := make([]int, m+1) // matchCol[j] = worker assigned to task j
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost(i0, j) - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			if j1 == -1 {
				return nil, 0, errors.New("assign: hungarian failed to augment")
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	assignment := make([]int, n)
	for j := 1; j <= m; j++ {
		if matchCol[j] > 0 {
			assignment[matchCol[j]-1] = j - 1
		}
	}
	return assignment, total(value, assignment), nil
}

// Exhaustive solves the assignment problem by enumerating every injective
// mapping of workers to tasks. Exponential; intended for the paper's 4×4
// exhaustive-placement comparison and for validating the other solvers.
func Exhaustive(value [][]float64) ([]int, float64, error) {
	n, m, err := validateMatrix(value)
	if err != nil {
		return nil, 0, err
	}
	if n > 9 {
		return nil, 0, fmt.Errorf("assign: exhaustive search infeasible for %d workers", n)
	}
	best := make([]int, n)
	bestVal := math.Inf(-1)
	cur := make([]int, n)
	usedTask := make([]bool, m)
	var walk func(i int, acc float64)
	walk = func(i int, acc float64) {
		if i == n {
			if acc > bestVal {
				bestVal = acc
				copy(best, cur)
			}
			return
		}
		for j := 0; j < m; j++ {
			if usedTask[j] {
				continue
			}
			usedTask[j] = true
			cur[i] = j
			walk(i+1, acc+value[i][j])
			usedTask[j] = false
		}
	}
	walk(0, 0)
	return best, total(value, best), nil
}

// LP solves the assignment problem by formulating it as a linear program
// and running the simplex method — the solver family the paper's cluster
// manager uses. The assignment polytope has integral vertices (Birkhoff),
// so the simplex vertex solution is a permutation; fractional ties are
// resolved greedily as a safeguard.
func LP(value [][]float64) ([]int, float64, error) {
	n, m, err := validateMatrix(value)
	if err != nil {
		return nil, 0, err
	}
	// Variables x[i][j] flattened to i*m+j.
	nv := n * m
	var rows [][]float64
	var rhs []float64
	// Each worker assigned exactly once.
	for i := 0; i < n; i++ {
		row := make([]float64, nv)
		for j := 0; j < m; j++ {
			row[i*m+j] = 1
		}
		rows = append(rows, row)
		rhs = append(rhs, 1)
	}
	// Each task used at most once: add slack variables by inequality →
	// equality with slack appended below (extend variable space).
	// Structural x (nv) + slack (m).
	for j := 0; j < m; j++ {
		row := make([]float64, nv+m)
		for i := 0; i < n; i++ {
			row[i*m+j] = 1
		}
		row[nv+j] = 1
		rows = append(rows, row)
		rhs = append(rhs, 1)
	}
	// Pad the worker rows with zero slack coefficients.
	for i := 0; i < n; i++ {
		rows[i] = append(rows[i], make([]float64, m)...)
	}
	c := make([]float64, nv+m)
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			c[i*m+j] = value[i][j]
		}
	}
	x, _, err := Simplex(c, rows, rhs)
	if err != nil {
		return nil, 0, err
	}
	assignment := make([]int, n)
	usedTask := make([]bool, m)
	for i := 0; i < n; i++ {
		bestJ, bestX := -1, 0.5
		for j := 0; j < m; j++ {
			if !usedTask[j] && x[i*m+j] > bestX {
				bestJ, bestX = j, x[i*m+j]
			}
		}
		if bestJ == -1 {
			// Fractional degenerate solution: take the best free task.
			for j := 0; j < m; j++ {
				if !usedTask[j] && (bestJ == -1 || value[i][j] > value[i][bestJ]) {
					bestJ = j
				}
			}
		}
		usedTask[bestJ] = true
		assignment[i] = bestJ
	}
	return assignment, total(value, assignment), nil
}

// Random assigns each worker a uniformly random distinct task — the
// paper's Random baseline placement policy.
func Random(value [][]float64, seed int64) ([]int, float64, error) {
	n, m, err := validateMatrix(value)
	if err != nil {
		return nil, 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(m)[:n]
	assignment := make([]int, n)
	copy(assignment, perm)
	return assignment, total(value, assignment), nil
}
