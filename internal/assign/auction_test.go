package assign

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randBatch builds a random churn batch over an n×m matrix: some rows
// fully rewritten, some columns fully rewritten, values drawn from gen.
func randBatch(rng *rand.Rand, n, m, nRows, nCols int, gen func() float64) ([]RowUpdate, []ColUpdate) {
	rows := make([]RowUpdate, 0, nRows)
	for _, i := range rng.Perm(n)[:nRows] {
		vals := make([]float64, m)
		for j := range vals {
			vals[j] = gen()
		}
		rows = append(rows, RowUpdate{Index: i, Values: vals})
	}
	cols := make([]ColUpdate, 0, nCols)
	for _, j := range rng.Perm(m)[:nCols] {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = gen()
		}
		cols = append(cols, ColUpdate{Index: j, Values: vals})
	}
	return rows, cols
}

// TestResolveBatchMatchesHungarian is the tentpole property test:
// random churn batches forced down the auction path must land on a
// state that passes SelfCheck and whose total value is bit-identical
// to a from-scratch Hungarian solve — rectangular and degenerate
// (integer, tie-rich) shapes included.
func TestResolveBatchMatchesHungarian(t *testing.T) {
	shapes := [][2]int{{2, 2}, {3, 7}, {8, 8}, {12, 20}, {24, 24}, {16, 40}}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, dims := range shapes {
			n, m := dims[0], dims[1]
			inc, err := NewIncremental(randMatrix(rng, n, m))
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < 4; step++ {
				nr := rng.Intn(n + 1)
				nc := rng.Intn(m + 1)
				rows, cols := randBatch(rng, n, m, nr, nc, func() float64 { return rng.Float64() * 100 })
				st, err := inc.ResolveBatch(rows, cols, BatchOptions{Threshold: 2})
				if err != nil {
					t.Fatalf("seed %d %dx%d step %d: %v", seed, n, m, step, err)
				}
				if nr+nc >= 2 && st.Sequential {
					t.Fatalf("seed %d %dx%d step %d: expected auction path for %d dirty lines", seed, n, m, step, nr+nc)
				}
				checkAgainstHungarian(t, inc)
			}
		}
	}
}

// TestResolveBatchDegenerateTies drives the auction through matrices
// made almost entirely of ties: small integer values, duplicated rows
// and columns. Equal-value optima abound, so this exercises both the
// deterministic tie-breaking and the canonical total.
func TestResolveBatchDegenerateTies(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n, m := 6+rng.Intn(6), 12
		value := make([][]float64, n)
		for i := range value {
			value[i] = make([]float64, m)
			for j := range value[i] {
				value[i][j] = float64(rng.Intn(4))
			}
		}
		// Duplicate a row and a column to force ties.
		if n >= 2 {
			copy(value[1], value[0])
		}
		for i := range value {
			value[i][1] = value[i][0]
		}
		inc, err := NewIncremental(value)
		if err != nil {
			t.Fatal(err)
		}
		gen := func() float64 { return float64(rng.Intn(4)) }
		rows, cols := randBatch(rng, n, m, 1+rng.Intn(n), 1+rng.Intn(m), gen)
		if _, err := inc.ResolveBatch(rows, cols, BatchOptions{Threshold: 2}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkAgainstHungarian(t, inc)
	}
}

// TestResolveBatchValueMatchesSequential runs the same batch through
// the auction path and through a sequential-twin solver and asserts the
// reported totals are bit-identical — the contract the hyperscale smoke
// relies on.
func TestResolveBatchValueMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		n, m := 10, 16
		base := randMatrix(rng, n, m)
		auc, err := NewIncremental(base)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewIncremental(base)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 5; step++ {
			rows, cols := randBatch(rng, n, m, rng.Intn(n+1), rng.Intn(m+1), func() float64 { return rng.Float64() * 50 })
			if _, err := auc.ResolveBatch(rows, cols, BatchOptions{Threshold: 2}); err != nil {
				t.Fatal(err)
			}
			if _, err := seq.ResolveBatch(rows, cols, BatchOptions{Threshold: 1}); err != nil {
				t.Fatal(err)
			}
			if ga, gs := auc.Total(), seq.Total(); ga != gs {
				t.Fatalf("seed %d step %d: auction total %v != sequential total %v", seed, step, ga, gs)
			}
		}
		if err := auc.SelfCheck(); err != nil {
			t.Fatal(err)
		}
		if err := seq.SelfCheck(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResolveBatchSequentialPathIsPerLine checks that below the
// threshold ResolveBatch is exactly the old per-line repair: same
// assignment, same duals, same total as hand-applied SetRow/SetCol.
func TestResolveBatchSequentialPathIsPerLine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, m := 8, 12
	base := randMatrix(rng, n, m)
	batch, err := NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := randBatch(rng, n, m, 3, 2, func() float64 { return rng.Float64() * 100 })
	st, err := batch.ResolveBatch(rows, cols, BatchOptions{Threshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sequential || st.AuctionRounds != 0 {
		t.Fatalf("expected sequential path, got %+v", st)
	}
	if st.DirtyRows != 3 || st.DirtyCols != 2 {
		t.Fatalf("dirty counts: %+v", st)
	}
	for _, r := range rows {
		if err := manual.SetRow(r.Index, r.Values); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cols {
		if err := manual.SetCol(c.Index, c.Values); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(batch.Assignment(), manual.Assignment()) {
		t.Fatalf("assignments diverged: %v vs %v", batch.Assignment(), manual.Assignment())
	}
	if batch.Total() != manual.Total() {
		t.Fatalf("totals diverged: %v vs %v", batch.Total(), manual.Total())
	}
}

// TestResolveBatchNoOpAndStats: value-identical updates are dropped on
// both paths, and the threshold semantics hold (1 forces sequential, 0
// means the default).
func TestResolveBatchNoOpAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, m := 6, 8
	base := randMatrix(rng, n, m)
	inc, err := NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Total()
	// A no-op batch: rewrite rows and columns with their current values.
	rows := []RowUpdate{{Index: 2, Values: append([]float64(nil), base[2]...)}}
	col := make([]float64, n)
	for i := range col {
		col[i] = base[i][4]
	}
	st, err := inc.ResolveBatch(rows, []ColUpdate{{Index: 4, Values: col}}, BatchOptions{Threshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.DirtyRows != 0 || st.DirtyCols != 0 || st.AuctionRounds != 0 || st.CleanupAugments != 0 {
		t.Fatalf("no-op batch did work: %+v", st)
	}
	if got := inc.Total(); got != before {
		t.Fatalf("no-op batch moved total %v -> %v", before, got)
	}

	// Threshold 1 forces the sequential path no matter the batch size.
	rows, cols := randBatch(rng, n, m, n, m, func() float64 { return rng.Float64() * 100 })
	st, err = inc.ResolveBatch(rows, cols, BatchOptions{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sequential {
		t.Fatalf("threshold 1 took the auction path: %+v", st)
	}
	checkAgainstHungarian(t, inc)

	// Threshold 0 means the default: a full rewrite of a 6×8 matrix is
	// 14 dirty lines, below DefaultBatchThreshold, so still sequential.
	rows, cols = randBatch(rng, n, m, n, m, func() float64 { return rng.Float64() * 100 })
	st, err = inc.ResolveBatch(rows, cols, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Sequential {
		t.Fatalf("default threshold engaged auction below %d lines: %+v", DefaultBatchThreshold, st)
	}
	checkAgainstHungarian(t, inc)
}

// TestResolveBatchErrors: invalid updates error out before any
// mutation, on both paths.
func TestResolveBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, m := 4, 6
	base := randMatrix(rng, n, m)
	inc, err := NewIncremental(base)
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Total()
	nanRow := make([]float64, m)
	nanRow[3] = math.NaN()
	infCol := make([]float64, n)
	infCol[1] = math.Inf(1)
	cases := []struct {
		rows []RowUpdate
		cols []ColUpdate
	}{
		{rows: []RowUpdate{{Index: -1, Values: make([]float64, m)}}},
		{rows: []RowUpdate{{Index: n, Values: make([]float64, m)}}},
		{rows: []RowUpdate{{Index: 0, Values: make([]float64, m-1)}}},
		{cols: []ColUpdate{{Index: m, Values: make([]float64, n)}}},
		{cols: []ColUpdate{{Index: 0, Values: make([]float64, n+1)}}},
		{rows: []RowUpdate{{Index: 1, Values: nanRow}}},
		{cols: []ColUpdate{{Index: 2, Values: infCol}}},
	}
	for k, c := range cases {
		if _, err := inc.ResolveBatch(c.rows, c.cols, BatchOptions{Threshold: 2}); err == nil {
			t.Fatalf("case %d: no error", k)
		}
	}
	if got := inc.Total(); got != before {
		t.Fatalf("failed batch mutated solver: %v -> %v", before, got)
	}
	if err := inc.SelfCheck(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchChurnLifecycleProperty is the satellite property test:
// random interleavings of AddRow/RemoveRow/SetCol followed by a
// ResolveBatch must keep SelfCheck green and the total bit-identical to
// a from-scratch Hungarian solve of the mirrored matrix.
func TestBatchChurnLifecycleProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		m := 10 + rng.Intn(8)
		inc, err := NewIncrementalCols(m)
		if err != nil {
			t.Fatal(err)
		}
		var mirror [][]float64 // mirror[i] aliases nothing in the solver
		newRow := func() []float64 {
			r := make([]float64, m)
			for j := range r {
				r[j] = rng.Float64() * 100
			}
			return r
		}
		for step := 0; step < 40; step++ {
			switch op := rng.Intn(3); {
			case op == 0 && len(mirror) < m:
				row := newRow()
				idx, err := inc.AddRow(row)
				if err != nil {
					t.Fatal(err)
				}
				if idx != len(mirror) {
					t.Fatalf("AddRow index %d, want %d", idx, len(mirror))
				}
				mirror = append(mirror, row)
			case op == 1 && len(mirror) > 0:
				i := rng.Intn(len(mirror))
				if err := inc.RemoveRow(i); err != nil {
					t.Fatal(err)
				}
				last := len(mirror) - 1
				mirror[i] = mirror[last]
				mirror = mirror[:last]
			case op == 2 && len(mirror) > 0:
				j := rng.Intn(m)
				col := make([]float64, len(mirror))
				for i := range col {
					col[i] = rng.Float64() * 100
					mirror[i][j] = col[i]
				}
				if err := inc.SetCol(j, col); err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(mirror) == 0 {
			continue
		}
		n := len(mirror)
		rows, cols := randBatch(rng, n, m, rng.Intn(n+1), rng.Intn(m+1), func() float64 { return rng.Float64() * 100 })
		for _, r := range rows {
			copy(mirror[r.Index], r.Values)
		}
		for _, c := range cols {
			for i, v := range c.Values {
				mirror[i][c.Index] = v
			}
		}
		if _, err := inc.ResolveBatch(rows, cols, BatchOptions{Threshold: 2, Workers: 2}); err != nil {
			t.Fatal(err)
		}
		if err := inc.SelfCheck(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, want, err := Hungarian(mirror)
		if err != nil {
			t.Fatal(err)
		}
		if got := inc.Total(); got != want {
			t.Fatalf("seed %d: total %v != Hungarian %v", seed, got, want)
		}
	}
}

// TestResolveBatchWorkerCountInvariant: the batch result is identical
// for every worker setting — the bid phase writes to index-disjoint
// slots and resolution is sequential.
func TestResolveBatchWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n, m := 16, 24
	base := randMatrix(rng, n, m)
	rows, cols := randBatch(rng, n, m, 10, 8, func() float64 { return rng.Float64() * 100 })
	var ref []int
	var refTotal float64
	for _, workers := range []int{1, 2, 7, 0} {
		inc, err := NewIncremental(base)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.ResolveBatch(rows, cols, BatchOptions{Threshold: 2, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refTotal = inc.Assignment(), inc.Total()
			continue
		}
		if !reflect.DeepEqual(inc.Assignment(), ref) {
			t.Fatalf("workers=%d: assignment diverged", workers)
		}
		if inc.Total() != refTotal {
			t.Fatalf("workers=%d: total diverged", workers)
		}
	}
}
