package assign_test

import (
	"math"
	"testing"

	"pocolo/internal/assign"
	"pocolo/internal/invariant"
)

// bruteBest finds the optimal assignment total by trying every injective
// worker→task mapping — an oracle independent of the package's own
// Exhaustive solver, tractable for n ≤ 6.
func bruteBest(value [][]float64) float64 {
	n, m := len(value), len(value[0])
	used := make([]bool, m)
	var rec func(i int) float64
	rec = func(i int) float64 {
		if i == n {
			return 0
		}
		best := math.Inf(-1)
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			if v := value[i][j] + rec(i+1); v > best {
				best = v
			}
			used[j] = false
		}
		return best
	}
	return rec(0)
}

// TestDegenerateMatrices drives every solver through the classic simplex
// and Hungarian trouble spots — total ties, zero-throughput rows,
// rectangular matrices, near-ties at floating-point noise scale — and
// cross-checks each result against an independent brute force: the
// assignment must be a valid matching and its total must be optimal.
func TestDegenerateMatrices(t *testing.T) {
	cases := []struct {
		name  string
		value [][]float64
	}{
		{"single-cell", [][]float64{{7}}},
		{"single-row-rect", [][]float64{{3, 1, 2}}},
		{"all-ties-2x2", [][]float64{{1, 1}, {1, 1}}},
		{"all-ties-4x4", [][]float64{
			{2, 2, 2, 2}, {2, 2, 2, 2}, {2, 2, 2, 2}, {2, 2, 2, 2},
		}},
		{"negative-ties", [][]float64{{-1, -1}, {-1, -1}}},
		{"all-zero-3x3", [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}}},
		{"zero-throughput-row", [][]float64{
			{0, 0, 0}, {1, 2, 3}, {3, 2, 1},
		}},
		{"two-zero-rows-rect", [][]float64{
			{0, 0, 0, 0}, {0, 0, 0, 0}, {1, 5, 2, 4},
		}},
		{"duplicate-columns", [][]float64{
			{4, 4, 1}, {2, 2, 9}, {5, 5, 3},
		}},
		{"rect-2x5", [][]float64{
			{1, 9, 2, 8, 3}, {7, 1, 6, 2, 5},
		}},
		{"rect-ties-3x6", [][]float64{
			{1, 1, 1, 1, 1, 1}, {0, 1, 0, 1, 0, 1}, {2, 2, 2, 2, 2, 2},
		}},
		{"near-ties-eps", [][]float64{
			{1, 1 + 1e-12}, {1 + 1e-12, 1},
		}},
		{"mixed-signs", [][]float64{
			{-5, 3, 0}, {0, -2, 4}, {1, 0, -7},
		}},
		{"six-by-six-blocks", [][]float64{
			{9, 9, 0, 0, 0, 0},
			{9, 9, 0, 0, 0, 0},
			{0, 0, 5, 5, 0, 0},
			{0, 0, 5, 5, 0, 0},
			{0, 0, 0, 0, 1, 1},
			{0, 0, 0, 0, 1, 1},
		}},
	}
	solvers := []struct {
		name string
		fn   func([][]float64) ([]int, float64, error)
	}{
		{"hungarian", assign.Hungarian},
		{"lp", assign.LP},
		{"exhaustive", assign.Exhaustive},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := bruteBest(tc.value)
			for _, s := range solvers {
				idx, val, err := s.fn(tc.value)
				if err != nil {
					t.Errorf("%s: %v", s.name, err)
					continue
				}
				if err := invariant.CheckAssignment(tc.value, idx, val); err != nil {
					t.Errorf("%s returned an inconsistent assignment: %v", s.name, err)
					continue
				}
				if math.Abs(val-want) > 1e-6*math.Max(1, math.Abs(want)) {
					t.Errorf("%s total = %v, brute force optimum = %v (assignment %v)",
						s.name, val, want, idx)
				}
			}
		})
	}
}

// TestRandomSolvedDegenerates fuzzes small matrices with heavy ties and
// zeros (seeded, deterministic) and requires solver/brute-force agreement
// on all of them.
func TestRandomSolvedDegenerates(t *testing.T) {
	// Small integer values make ties frequent; division by 2 adds
	// repeated halves without float noise.
	vals := []float64{0, 0, 0.5, 1, 1, 2}
	next := func(state *uint64) float64 {
		// xorshift64: deterministic across platforms, no rand dependency.
		x := *state
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		*state = x
		return vals[x%uint64(len(vals))]
	}
	state := uint64(0x9E3779B97F4A7C15)
	for trial := 0; trial < 60; trial++ {
		n := 1 + int(trial%5)  // 1..5 workers
		m := n + int(trial/20) // up to 2 extra tasks
		value := make([][]float64, n)
		for i := range value {
			value[i] = make([]float64, m)
			for j := range value[i] {
				value[i][j] = next(&state)
			}
		}
		want := bruteBest(value)
		for _, s := range []struct {
			name string
			fn   func([][]float64) ([]int, float64, error)
		}{{"hungarian", assign.Hungarian}, {"lp", assign.LP}, {"exhaustive", assign.Exhaustive}} {
			idx, val, err := s.fn(value)
			if err != nil {
				t.Fatalf("trial %d %s: %v (matrix %v)", trial, s.name, err, value)
			}
			if err := invariant.CheckAssignment(value, idx, val); err != nil {
				t.Fatalf("trial %d %s inconsistent: %v (matrix %v)", trial, s.name, err, value)
			}
			if math.Abs(val-want) > 1e-6 {
				t.Fatalf("trial %d %s total = %v, want %v (matrix %v)", trial, s.name, val, want, value)
			}
		}
	}
}
