package assign

import (
	"errors"
	"fmt"
	"math"
)

// Incremental is an exact assignment solver built for steady-state
// re-solves: it keeps the Jonker–Volgenant dual prices (row and column
// potentials) alive between solves, so when a single cell, row, or column
// of the value matrix changes only the affected row is re-augmented —
// one O(m²) shortest-augmenting-path pass — instead of re-running the
// full O(m³) Hungarian solve. Rows can also be added and removed, which
// is what the cluster rebalancer uses to migrate a job between pods.
//
// The solver maximizes total value over an n×m matrix with n workers
// (rows) and m ≥ n tasks (columns), exactly like Hungarian; after every
// mutation the maintained assignment is optimal for the current matrix,
// so Total always equals what a from-scratch Hungarian solve of the same
// matrix would report.
//
// Internally the matrix is padded square with m−n all-zero dummy rows,
// so the matching is always perfect and the optimality certificate needs
// no free-column side conditions. The invariants maintained between
// operations (on the minimization costs c(i,j) = −value[i][j]) are:
//
//   - dual feasibility: c(i,j) − u[i] − v[j] ≥ 0 for every cell,
//   - complementary slackness: equality on every matched edge,
//   - perfect matching over all m internal rows.
//
// Feasible duals plus a perfect matching of tight edges certify
// optimality by LP duality, and a dummy row of zeros adds the same
// constant (zero) to every assignment's total, so the optimum of the
// padded problem restricted to real rows is the optimum of the
// rectangular one. (Without padding, rectangular duals carry an extra
// side condition — v must vanish on unmatched columns — that single-row
// repairs cannot cheaply maintain; padding removes the condition
// altogether.) Each mutation detaches at most one row and restores the
// matching with a single augmenting pass — the induction step of the JV
// algorithm, which preserves all three invariants even when the
// detached row's potential is stale: the pass is a Dijkstra from that
// row, and shifting a Dijkstra source's out-edges by a constant does
// not change the shortest-path tree.
//
// Incremental is not safe for concurrent use.
type Incremental struct {
	n int // real (caller-visible) rows
	m int // columns; also the internal row count after padding

	value [][]float64 // m×m owned; rows n..m-1 are all-zero dummies

	u        []float64 // row potentials, len m
	v        []float64 // column potentials, len m
	rowMatch []int     // rowMatch[i] = column of internal row i
	colMatch []int     // colMatch[j] = internal row of column j

	// Scratch for the augmenting pass, reused across calls.
	minv []float64
	used []bool
	way  []int
}

// NewIncremental validates and copies the value matrix and computes an
// initial optimal assignment (m augmenting passes over the padded
// square matrix, the same order of work a fresh Hungarian solve does).
func NewIncremental(value [][]float64) (*Incremental, error) {
	n, m, err := validateMatrix(value)
	if err != nil {
		return nil, err
	}
	inc := newIncrementalCols(m)
	inc.n = n
	for i, row := range value {
		copy(inc.value[i], row)
	}
	if err := inc.solveFresh(); err != nil {
		return nil, err
	}
	return inc, nil
}

// NewIncrementalCols returns a solver with m columns and no rows yet —
// the state of an empty pod, ready for AddRow as jobs arrive.
func NewIncrementalCols(m int) (*Incremental, error) {
	if m < 1 {
		return nil, fmt.Errorf("assign: need at least 1 column, got %d", m)
	}
	inc := newIncrementalCols(m)
	if err := inc.solveFresh(); err != nil {
		return nil, err
	}
	return inc, nil
}

func newIncrementalCols(m int) *Incremental {
	inc := &Incremental{
		m:        m,
		value:    make([][]float64, m),
		u:        make([]float64, m),
		v:        make([]float64, m),
		rowMatch: make([]int, m),
		colMatch: make([]int, m),
		minv:     make([]float64, m),
		used:     make([]bool, m),
		way:      make([]int, m),
	}
	for i := range inc.value {
		inc.value[i] = make([]float64, m)
		inc.rowMatch[i] = -1
		inc.colMatch[i] = -1
	}
	return inc
}

func (inc *Incremental) solveFresh() error {
	for i := 0; i < inc.m; i++ {
		if err := inc.augment(i); err != nil {
			return err
		}
	}
	return nil
}

// cost is the minimization transform. Unlike Hungarian's maxV−value
// offset, plain negation needs no global constant, so a single cell
// update never invalidates the rest of the cost matrix; the potentials
// absorb any shift.
func (inc *Incremental) cost(i, j int) float64 { return -inc.value[i][j] }

// Rows returns the current number of workers (rows).
func (inc *Incremental) Rows() int { return inc.n }

// Cols returns the number of tasks (columns).
func (inc *Incremental) Cols() int { return inc.m }

// At returns the current value of cell (i, j).
func (inc *Incremental) At(i, j int) float64 { return inc.value[i][j] }

// Assignment returns a copy of the current optimal assignment: element i
// is the column assigned to row i.
func (inc *Incremental) Assignment() []int {
	return append([]int(nil), inc.rowMatch[:inc.n]...)
}

// ColAssignment returns a copy of the column-side matching: element j is
// the row assigned to column j, or -1 if the column is free (matched
// only to an internal dummy row).
func (inc *Incremental) ColAssignment() []int {
	out := make([]int, inc.m)
	for j, r := range inc.colMatch {
		if r >= inc.n {
			r = -1
		}
		out[j] = r
	}
	return out
}

// Total returns the value of the current optimal assignment, summed in
// row order — the same summation order Hungarian uses, so identical
// assignments produce bit-identical totals.
func (inc *Incremental) Total() float64 {
	t := 0.0
	for i := 0; i < inc.n; i++ {
		t += inc.value[i][inc.rowMatch[i]]
	}
	return t
}

// SetCell updates one cell and restores optimality. If the cell is
// unmatched and the change keeps the duals feasible the update is O(1);
// otherwise the cell's row is re-augmented (one O(m²) pass).
func (inc *Incremental) SetCell(i, j int, val float64) error {
	if i < 0 || i >= inc.n || j < 0 || j >= inc.m {
		return fmt.Errorf("assign: cell (%d, %d) outside %dx%d matrix", i, j, inc.n, inc.m)
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
	}
	if inc.value[i][j] == val {
		return nil
	}
	matchedHere := inc.rowMatch[i] == j
	inc.value[i][j] = val
	if !matchedHere && inc.cost(i, j)-inc.u[i]-inc.v[j] >= 0 {
		// Duals still feasible and no matched edge touched: the old
		// assignment remains optimal.
		return nil
	}
	return inc.resolveRow(i)
}

// SetRow replaces one row of the matrix and re-augments it.
func (inc *Incremental) SetRow(i int, row []float64) error {
	if i < 0 || i >= inc.n {
		return fmt.Errorf("assign: row %d outside %d rows", i, inc.n)
	}
	if len(row) != inc.m {
		return fmt.Errorf("assign: row has %d values, want %d", len(row), inc.m)
	}
	same := true
	for j, val := range row {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
		}
		if val != inc.value[i][j] {
			same = false
		}
	}
	if same {
		return nil
	}
	copy(inc.value[i], row)
	return inc.resolveRow(i)
}

// SetCol replaces one column of the matrix (dummy-row entries stay
// zero, so col holds one value per real row). The column's potential is
// repaired directly (v[j] = min over internal rows of c(i,j) − u[i],
// the tightest feasible value), so at most the row matched to the
// column needs re-augmenting; if its matched edge stays tight the whole
// update finishes without touching the matching.
func (inc *Incremental) SetCol(j int, col []float64) error {
	if j < 0 || j >= inc.m {
		return fmt.Errorf("assign: column %d outside %d columns", j, inc.m)
	}
	if len(col) != inc.n {
		return fmt.Errorf("assign: column has %d values, want %d", len(col), inc.n)
	}
	same := true
	for i, val := range col {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
		}
		if val != inc.value[i][j] {
			same = false
		}
	}
	if same {
		return nil
	}
	for i, val := range col {
		inc.value[i][j] = val
	}
	minRed := math.Inf(1)
	for i := 0; i < inc.m; i++ {
		if red := inc.cost(i, j) - inc.u[i]; red < minRed {
			minRed = red
		}
	}
	inc.v[j] = minRed
	r := inc.colMatch[j]
	if inc.cost(r, j)-inc.u[r]-inc.v[j] == 0 {
		// The matched edge is still tight: feasibility plus tight matched
		// edges plus a perfect matching means it is still optimal.
		return nil
	}
	return inc.resolveRow(r)
}

// AddRow appends a worker with the given task values and augments it in,
// returning its row index. The matrix must stay at most square (n ≤ m).
func (inc *Incremental) AddRow(row []float64) (int, error) {
	if inc.n+1 > inc.m {
		return 0, fmt.Errorf("assign: cannot add row %d with only %d columns", inc.n+1, inc.m)
	}
	if len(row) != inc.m {
		return 0, fmt.Errorf("assign: row has %d values, want %d", len(row), inc.m)
	}
	for j, val := range row {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return 0, fmt.Errorf("assign: non-finite value at (%d, %d)", inc.n, j)
		}
	}
	// The first dummy row becomes real: overwrite its zeros and repair.
	idx := inc.n
	copy(inc.value[idx], row)
	inc.n++
	if err := inc.resolveRow(idx); err != nil {
		return 0, err
	}
	return idx, nil
}

// RemoveRow deletes a worker. The last row is swapped into index i (the
// caller must mirror that swap in any parallel bookkeeping).
func (inc *Incremental) RemoveRow(i int) error {
	if i < 0 || i >= inc.n {
		return fmt.Errorf("assign: row %d outside %d rows", i, inc.n)
	}
	// The row reverts to an all-zero dummy; one augmenting pass
	// re-certifies optimality with the row contributing nothing.
	for j := range inc.value[i] {
		inc.value[i][j] = 0
	}
	if err := inc.resolveRow(i); err != nil {
		return err
	}
	last := inc.n - 1
	if i != last {
		// Swap the freed dummy past the last real row so dummies stay
		// contiguous. A wholesale row swap (values, potential, matching)
		// is pure relabeling and preserves every invariant.
		inc.value[i], inc.value[last] = inc.value[last], inc.value[i]
		inc.u[i], inc.u[last] = inc.u[last], inc.u[i]
		inc.rowMatch[i], inc.rowMatch[last] = inc.rowMatch[last], inc.rowMatch[i]
		inc.colMatch[inc.rowMatch[i]] = i
		inc.colMatch[inc.rowMatch[last]] = last
	}
	inc.n = last
	return nil
}

// resolveRow detaches internal row i and re-augments it. Every other row
// keeps a feasible, tight matched edge, so one augmenting pass restores
// a perfect optimal matching — the JV induction step.
func (inc *Incremental) resolveRow(i int) error {
	if j := inc.rowMatch[i]; j >= 0 {
		inc.colMatch[j] = -1
		inc.rowMatch[i] = -1
	}
	return inc.augment(i)
}

// augment runs one shortest-augmenting-path pass from free row start,
// updating the potentials so dual feasibility is preserved. The source
// row's potential may be arbitrarily stale: the pass is a Dijkstra with
// the row as source, and a constant shift of all source out-edges
// leaves the shortest-path tree unchanged.
func (inc *Incremental) augment(start int) error {
	m := inc.m
	minv, used, way := inc.minv, inc.used, inc.way
	for j := 0; j < m; j++ {
		minv[j] = math.Inf(1)
		used[j] = false
		way[j] = -1
	}
	i0 := start
	j0 := -1
	for {
		delta := math.Inf(1)
		j1 := -1
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			cur := inc.cost(i0, j) - inc.u[i0] - inc.v[j]
			if cur < minv[j] {
				minv[j] = cur
				way[j] = j0
			}
			if minv[j] < delta {
				delta = minv[j]
				j1 = j
			}
		}
		if j1 == -1 || math.IsInf(delta, 1) {
			return errors.New("assign: augment failed to reach a free column")
		}
		inc.u[start] += delta
		for j := 0; j < m; j++ {
			if used[j] {
				inc.u[inc.colMatch[j]] += delta
				inc.v[j] -= delta
			} else {
				minv[j] -= delta
			}
		}
		used[j1] = true
		j0 = j1
		if inc.colMatch[j1] == -1 {
			break
		}
		i0 = inc.colMatch[j1]
	}
	for j0 != -1 {
		j1 := way[j0]
		var r int
		if j1 == -1 {
			r = start
		} else {
			r = inc.colMatch[j1]
		}
		inc.colMatch[j0] = r
		inc.rowMatch[r] = j0
		j0 = j1
	}
	return nil
}

// SelfCheck verifies the solver's internal invariants — dual
// feasibility, tightness of matched edges, matching consistency, and
// all-zero dummy rows — and returns the first violation. It exists for
// tests and debugging; a non-nil error means a solver bug, not a caller
// error.
func (inc *Incremental) SelfCheck() error {
	const tol = 1e-9
	for i := 0; i < inc.m; i++ {
		j := inc.rowMatch[i]
		if j < 0 || j >= inc.m {
			return fmt.Errorf("assign: row %d unmatched", i)
		}
		if inc.colMatch[j] != i {
			return fmt.Errorf("assign: match arrays disagree at row %d / col %d", i, j)
		}
		if red := inc.cost(i, j) - inc.u[i] - inc.v[j]; math.Abs(red) > tol {
			return fmt.Errorf("assign: matched edge (%d, %d) not tight (reduced %g)", i, j, red)
		}
	}
	for i := inc.n; i < inc.m; i++ {
		for j, val := range inc.value[i] {
			if val != 0 {
				return fmt.Errorf("assign: dummy row %d has nonzero value at column %d", i, j)
			}
		}
	}
	for i := 0; i < inc.m; i++ {
		for j := 0; j < inc.m; j++ {
			if red := inc.cost(i, j) - inc.u[i] - inc.v[j]; red < -tol {
				return fmt.Errorf("assign: dual infeasible at (%d, %d): reduced %g", i, j, red)
			}
		}
	}
	return nil
}
