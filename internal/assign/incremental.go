package assign

import (
	"errors"
	"fmt"
	"math"
)

// Incremental is an exact assignment solver built for steady-state
// re-solves: it keeps the Jonker–Volgenant dual prices (row and column
// potentials) alive between solves, so when a single cell, row, or column
// of the value matrix changes only the affected row is re-augmented —
// one O(m²) shortest-augmenting-path pass — instead of re-running the
// full O(m³) Hungarian solve. Rows can also be added and removed, which
// is what the cluster rebalancer uses to migrate a job between pods.
//
// The solver maximizes total value over an n×m matrix with n workers
// (rows) and m ≥ n tasks (columns), exactly like Hungarian; after every
// mutation the maintained assignment is optimal for the current matrix,
// so Total always equals what a from-scratch Hungarian solve of the same
// matrix would report.
//
// Internally the matrix is padded square with m−n all-zero dummy rows,
// so the matching is always perfect and the optimality certificate needs
// no free-column side conditions. The invariants maintained between
// operations (on the minimization costs c(i,j) = −value[i][j]) are:
//
//   - dual feasibility: c(i,j) − u[i] − v[j] ≥ 0 for every cell,
//   - complementary slackness: equality on every matched edge,
//   - perfect matching over all m internal rows.
//
// Feasible duals plus a perfect matching of tight edges certify
// optimality by LP duality, and a dummy row of zeros adds the same
// constant (zero) to every assignment's total, so the optimum of the
// padded problem restricted to real rows is the optimum of the
// rectangular one. (Without padding, rectangular duals carry an extra
// side condition — v must vanish on unmatched columns — that single-row
// repairs cannot cheaply maintain; padding removes the condition
// altogether.) Each mutation detaches at most one row and restores the
// matching with a single augmenting pass — the induction step of the JV
// algorithm, which preserves all three invariants even when the
// detached row's potential is stale: the pass is a Dijkstra from that
// row, and shifting a Dijkstra source's out-edges by a constant does
// not change the shortest-path tree.
//
// Incremental is not safe for concurrent use.
type Incremental struct {
	n int // real (caller-visible) rows
	m int // columns; also the internal row count after padding

	value [][]float64 // m×m owned; rows n..m-1 are all-zero dummies

	u        []float64 // row potentials, len m
	v        []float64 // column potentials, len m
	rowMatch []int     // rowMatch[i] = column of internal row i
	colMatch []int     // colMatch[j] = internal row of column j

	// Scratch for the augmenting pass, reused across calls.
	minv []float64 // tentative shortest distances per column
	used []bool
	way  []int
	uns  []int     // compacted list of not-yet-settled columns
	src  []int     // augmentBatch: seeding source row per column
	stl  []int     // augmentBatch: settled columns, in settle order
	stlD []float64 // augmentBatch: settle-time distance per stl entry
	ci   []int32   // augmentBatch: compacted live column indices
	cv   []float64 // augmentBatch: column potentials, parallel to ci
	sd   []float64 // augmentBatch: best seed candidate per column
	ss   []int     // augmentBatch: source providing sd

	// Scratch for Total's canonical sum and for ResolveBatch.
	totScratch []float64
	batch      *batchState
}

// NewIncremental validates and copies the value matrix and computes an
// initial optimal assignment (m augmenting passes over the padded
// square matrix, the same order of work a fresh Hungarian solve does).
func NewIncremental(value [][]float64) (*Incremental, error) {
	n, m, err := validateMatrix(value)
	if err != nil {
		return nil, err
	}
	inc := newIncrementalCols(m)
	inc.n = n
	for i, row := range value {
		copy(inc.value[i], row)
	}
	if err := inc.solveFresh(); err != nil {
		return nil, err
	}
	return inc, nil
}

// NewIncrementalCols returns a solver with m columns and no rows yet —
// the state of an empty pod, ready for AddRow as jobs arrive.
func NewIncrementalCols(m int) (*Incremental, error) {
	if m < 1 {
		return nil, fmt.Errorf("assign: need at least 1 column, got %d", m)
	}
	inc := newIncrementalCols(m)
	if err := inc.solveFresh(); err != nil {
		return nil, err
	}
	return inc, nil
}

func newIncrementalCols(m int) *Incremental {
	inc := &Incremental{
		m:        m,
		value:    make([][]float64, m),
		u:        make([]float64, m),
		v:        make([]float64, m),
		rowMatch: make([]int, m),
		colMatch: make([]int, m),
		minv:     make([]float64, m),
		used:     make([]bool, m),
		way:      make([]int, m),
		uns:      make([]int, m),
		src:      make([]int, m),
		stl:      make([]int, 0, m),
		stlD:     make([]float64, 0, m),
		ci:       make([]int32, m),
		cv:       make([]float64, m),
		sd:       make([]float64, m),
		ss:       make([]int, m),
	}
	for i := range inc.value {
		inc.value[i] = make([]float64, m)
		inc.rowMatch[i] = -1
		inc.colMatch[i] = -1
	}
	return inc
}

func (inc *Incremental) solveFresh() error {
	for i := 0; i < inc.m; i++ {
		if err := inc.augment(i); err != nil {
			return err
		}
	}
	return nil
}

// cost is the minimization transform. Unlike Hungarian's maxV−value
// offset, plain negation needs no global constant, so a single cell
// update never invalidates the rest of the cost matrix; the potentials
// absorb any shift.
func (inc *Incremental) cost(i, j int) float64 { return -inc.value[i][j] }

// Rows returns the current number of workers (rows).
func (inc *Incremental) Rows() int { return inc.n }

// Cols returns the number of tasks (columns).
func (inc *Incremental) Cols() int { return inc.m }

// At returns the current value of cell (i, j).
func (inc *Incremental) At(i, j int) float64 { return inc.value[i][j] }

// Assignment returns a copy of the current optimal assignment: element i
// is the column assigned to row i.
func (inc *Incremental) Assignment() []int {
	return append([]int(nil), inc.rowMatch[:inc.n]...)
}

// ColAssignment returns a copy of the column-side matching: element j is
// the row assigned to column j, or -1 if the column is free (matched
// only to an internal dummy row).
func (inc *Incremental) ColAssignment() []int {
	out := make([]int, inc.m)
	for j, r := range inc.colMatch {
		if r >= inc.n {
			r = -1
		}
		out[j] = r
	}
	return out
}

// Total returns the value of the current optimal assignment as the
// canonical sorted-order sum (see canonicalSum) — the same summation
// Hungarian uses, so any two solvers holding equal-value optima report
// bit-identical totals even when their permutations differ among ties.
func (inc *Incremental) Total() float64 {
	if cap(inc.totScratch) < inc.n {
		inc.totScratch = make([]float64, inc.n)
	}
	vals := inc.totScratch[:inc.n]
	for i := 0; i < inc.n; i++ {
		vals[i] = inc.value[i][inc.rowMatch[i]]
	}
	return canonicalSum(vals)
}

// SetCell updates one cell and restores optimality. If the cell is
// unmatched and the change keeps the duals feasible the update is O(1);
// otherwise the cell's row is re-augmented (one O(m²) pass).
func (inc *Incremental) SetCell(i, j int, val float64) error {
	if i < 0 || i >= inc.n || j < 0 || j >= inc.m {
		return fmt.Errorf("assign: cell (%d, %d) outside %dx%d matrix", i, j, inc.n, inc.m)
	}
	if math.IsNaN(val) || math.IsInf(val, 0) {
		return fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
	}
	if inc.value[i][j] == val {
		return nil
	}
	matchedHere := inc.rowMatch[i] == j
	inc.value[i][j] = val
	if !matchedHere && inc.cost(i, j)-inc.u[i]-inc.v[j] >= 0 {
		// Duals still feasible and no matched edge touched: the old
		// assignment remains optimal.
		return nil
	}
	return inc.resolveRow(i)
}

// SetRow replaces one row of the matrix and re-augments it.
func (inc *Incremental) SetRow(i int, row []float64) error {
	if i < 0 || i >= inc.n {
		return fmt.Errorf("assign: row %d outside %d rows", i, inc.n)
	}
	if len(row) != inc.m {
		return fmt.Errorf("assign: row has %d values, want %d", len(row), inc.m)
	}
	same := true
	for j, val := range row {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
		}
		if val != inc.value[i][j] {
			same = false
		}
	}
	if same {
		return nil
	}
	copy(inc.value[i], row)
	return inc.resolveRow(i)
}

// SetCol replaces one column of the matrix (dummy-row entries stay
// zero, so col holds one value per real row). The column's potential is
// repaired directly (v[j] = min over internal rows of c(i,j) − u[i],
// the tightest feasible value), so at most the row matched to the
// column needs re-augmenting; if its matched edge stays tight the whole
// update finishes without touching the matching.
func (inc *Incremental) SetCol(j int, col []float64) error {
	if j < 0 || j >= inc.m {
		return fmt.Errorf("assign: column %d outside %d columns", j, inc.m)
	}
	if len(col) != inc.n {
		return fmt.Errorf("assign: column has %d values, want %d", len(col), inc.n)
	}
	same := true
	for i, val := range col {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return fmt.Errorf("assign: non-finite value at (%d, %d)", i, j)
		}
		if val != inc.value[i][j] {
			same = false
		}
	}
	if same {
		return nil
	}
	for i, val := range col {
		inc.value[i][j] = val
	}
	minRed := math.Inf(1)
	for i := 0; i < inc.m; i++ {
		if red := inc.cost(i, j) - inc.u[i]; red < minRed {
			minRed = red
		}
	}
	inc.v[j] = minRed
	r := inc.colMatch[j]
	if inc.cost(r, j)-inc.u[r]-inc.v[j] == 0 {
		// The matched edge is still tight: feasibility plus tight matched
		// edges plus a perfect matching means it is still optimal.
		return nil
	}
	return inc.resolveRow(r)
}

// AddRow appends a worker with the given task values and augments it in,
// returning its row index. The matrix must stay at most square (n ≤ m).
func (inc *Incremental) AddRow(row []float64) (int, error) {
	if inc.n+1 > inc.m {
		return 0, fmt.Errorf("assign: cannot add row %d with only %d columns", inc.n+1, inc.m)
	}
	if len(row) != inc.m {
		return 0, fmt.Errorf("assign: row has %d values, want %d", len(row), inc.m)
	}
	for j, val := range row {
		if math.IsNaN(val) || math.IsInf(val, 0) {
			return 0, fmt.Errorf("assign: non-finite value at (%d, %d)", inc.n, j)
		}
	}
	// The first dummy row becomes real: overwrite its zeros and repair.
	idx := inc.n
	copy(inc.value[idx], row)
	inc.n++
	if err := inc.resolveRow(idx); err != nil {
		return 0, err
	}
	return idx, nil
}

// RemoveRow deletes a worker. The last row is swapped into index i (the
// caller must mirror that swap in any parallel bookkeeping).
func (inc *Incremental) RemoveRow(i int) error {
	if i < 0 || i >= inc.n {
		return fmt.Errorf("assign: row %d outside %d rows", i, inc.n)
	}
	// The row reverts to an all-zero dummy; one augmenting pass
	// re-certifies optimality with the row contributing nothing.
	for j := range inc.value[i] {
		inc.value[i][j] = 0
	}
	if err := inc.resolveRow(i); err != nil {
		return err
	}
	last := inc.n - 1
	if i != last {
		// Swap the freed dummy past the last real row so dummies stay
		// contiguous. A wholesale row swap (values, potential, matching)
		// is pure relabeling and preserves every invariant.
		inc.value[i], inc.value[last] = inc.value[last], inc.value[i]
		inc.u[i], inc.u[last] = inc.u[last], inc.u[i]
		inc.rowMatch[i], inc.rowMatch[last] = inc.rowMatch[last], inc.rowMatch[i]
		inc.colMatch[inc.rowMatch[i]] = i
		inc.colMatch[inc.rowMatch[last]] = last
	}
	inc.n = last
	return nil
}

// resolveRow detaches internal row i and re-augments it. Every other row
// keeps a feasible, tight matched edge, so one augmenting pass restores
// a perfect optimal matching — the JV induction step.
func (inc *Incremental) resolveRow(i int) error {
	if j := inc.rowMatch[i]; j >= 0 {
		inc.colMatch[j] = -1
		inc.rowMatch[i] = -1
	}
	return inc.augment(i)
}

// augment runs one shortest-augmenting-path pass from free row start,
// updating the potentials so dual feasibility is preserved. The source
// row's potential may be arbitrarily stale: the pass is a Dijkstra with
// the row as source, and a constant shift of all source out-edges
// leaves the shortest-path tree unchanged.
//
// The pass is the classical JV iteration rewritten against duals frozen
// at entry: the textbook version shifts u, v, and every tentative
// distance by delta each round (two O(m) sweeps per settled column),
// but those shifts are uniform, so absolute distances
//
//	dist[j] = dist[settled column of i0] + cost(i0,j) − u[i0] − v[j]
//
// settle in the same order with a single sweep, over a compacted list
// of unsettled columns that shrinks as the path grows. The per-round
// dual shifts telescope: a column settled at distance d ends up shifted
// by exactly (final distance − d), applied once at the end.
func (inc *Incremental) augment(start int) error {
	m := inc.m
	dist, used, way, uns := inc.minv, inc.used, inc.way, inc.uns
	for j := 0; j < m; j++ {
		dist[j] = math.Inf(1)
		used[j] = false
		way[j] = -1
		uns[j] = j
	}
	nu := m // live prefix of uns: columns not yet settled
	i0 := start
	j0 := -1
	base := 0.0 // distance at which i0's column settled (0 for the source)
	for {
		row := inc.value[i0]
		off := base - inc.u[i0]
		v := inc.v
		delta := math.Inf(1)
		pick := -1
		for k := 0; k < nu; k++ {
			j := uns[k]
			if cand := off - row[j] - v[j]; cand < dist[j] {
				dist[j] = cand
				way[j] = j0
			}
			if dist[j] < delta {
				delta = dist[j]
				pick = k
			}
		}
		if pick == -1 || math.IsInf(delta, 1) {
			return errors.New("assign: augment failed to reach a free column")
		}
		j1 := uns[pick]
		nu--
		uns[pick] = uns[nu]
		used[j1] = true
		j0 = j1
		base = delta
		if inc.colMatch[j1] == -1 {
			break
		}
		i0 = inc.colMatch[j1]
	}
	// Apply the telescoped dual shifts before flipping the path, while
	// colMatch still names each settled column's pre-augment row. The
	// final (free) column settled at distance base, so its shift is zero.
	inc.u[start] += base
	for j := 0; j < m; j++ {
		if !used[j] || inc.colMatch[j] == -1 {
			continue
		}
		shift := base - dist[j]
		inc.u[inc.colMatch[j]] += shift
		inc.v[j] -= shift
	}
	for j0 != -1 {
		j1 := way[j0]
		var r int
		if j1 == -1 {
			r = start
		} else {
			r = inc.colMatch[j1]
		}
		inc.colMatch[j0] = r
		inc.rowMatch[r] = j0
		j0 = j1
	}
	return nil
}

// augmentBatch restores a perfect matching when several rows are free
// at once: repeated multi-source shortest-augmenting-path passes, each
// seeded from every remaining free row, that settle columns until the
// nearest free column is reached. With f sources and f free columns
// the frontier meets a free column far sooner than any single-source
// pass would, so the passes early in a batch settle only a small slice
// of the matrix; the count returned is the number of passes (one per
// initially free row).
//
// Exactness is per-pass, by the same algebra as augment. Every source
// seeds its candidates with its own (possibly stale) potential offset;
// mixing offsets can only change which source wins the pass, never the
// validity of the result: the flipped path follows the actual relax
// parents, so its tightness equalities all hold with the winning
// source's own offset folded in, and dual feasibility for the newly
// matched source follows from its seed candidates bounding every
// settled distance below and the final distance above. Losing sources
// stay free and stale, exactly as they started.
func (inc *Incremental) augmentBatch(sources []int) (int, error) {
	passes := 0
	if len(sources) == 0 {
		return 0, nil
	}
	m := inc.m
	sd, ss, v := inc.sd, inc.ss, inc.v
	// Seed board: per column, the best direct candidate over all
	// sources, maintained across passes. Ascending source order with
	// strict improvement keeps the lowest row on ties. A pass
	// invalidates a column's entry only if the pass settled it (its v
	// shifted) or its providing source won (and is gone), so the repair
	// after each pass touches a small slice of the board instead of
	// reseeding sources x columns from scratch.
	for j := 0; j < m; j++ {
		sd[j] = math.Inf(1)
		ss[j] = -1
	}
	for _, s := range sources {
		row := inc.value[s]
		off := -inc.u[s]
		for j := 0; j < m; j++ {
			if cand := off - row[j] - v[j]; cand < sd[j] {
				sd[j] = cand
				ss[j] = s
			}
		}
	}
	for {
		winner, err := inc.augmentMulti()
		if err != nil {
			return passes, err
		}
		passes++
		for k, s := range sources {
			if s == winner {
				sources = append(sources[:k], sources[k+1:]...)
				break
			}
		}
		if len(sources) == 0 {
			return passes, nil
		}
		// Board repair. A seed entry is off - row[j] - v[j]; the pass
		// changed only v (on settled columns) and u of rows that are
		// matched or departed, so a settled column's offers from every
		// remaining source moved by the same dual shift: the entry
		// shifts in place and keeps its providing source. Only columns
		// whose provider was the departed winner need a fresh scan over
		// the remaining sources (row-major, so each source streams its
		// own row).
		stl, stlD := inc.stl, inc.stlD
		base := stlD[len(stlD)-1]
		for k, j := range stl {
			if ss[j] != winner {
				sd[j] += base - stlD[k]
			}
		}
		inval := inc.uns[:0]
		for j := 0; j < m; j++ {
			if ss[j] == winner {
				sd[j] = math.Inf(1)
				ss[j] = -1
				inval = append(inval, j)
			}
		}
		for _, str := range sources {
			row := inc.value[str]
			off := -inc.u[str]
			for _, j := range inval {
				if cand := off - row[j] - v[j]; cand < sd[j] {
					sd[j] = cand
					ss[j] = str
				}
			}
		}
	}
}

// augmentMulti runs one multi-source pass over the current seed board
// and returns the source row that got matched. The pass is augment's
// frozen-dual Dijkstra restructured for the batch hot loop: the
// unsettled columns live in compacted parallel arrays (index, tentative
// distance, and frozen column potential), so the relax sweep reads
// three sequential streams plus one gather into the relaxing row, and
// the next-minimum reduction is split across two accumulators to break
// the loop-carried compare chain. The index stream is int32 — the
// sweep is memory-bound, so halving that stream's width is a measured
// win, and pod matrices stay far below 2^31 columns. Settling swaps
// the last live entry into the settled slot; settle-time distances are
// recorded on a side list for the telescoped dual shifts. Ties in the
// minimum reduction break deterministically (even slots win over odd
// at equal distance); any minimum is a valid Dijkstra pick, so this
// affects only which of several equal-value optima is reached.
func (inc *Incremental) augmentMulti() (int, error) {
	m := inc.m
	cidx, cdist, cv := inc.ci[:m], inc.minv[:m], inc.cv[:m]
	way, src := inc.way, inc.src
	copy(cdist, inc.sd)
	copy(cv, inc.v)
	copy(src, inc.ss)
	for j := 0; j < m; j++ {
		cidx[j] = int32(j)
		way[j] = -1
	}
	stl, stlD := inc.stl[:0], inc.stlD[:0]
	nu := m // live prefix of the compacted arrays
	// First settle: pure min scan over the seeded distances.
	delta := math.Inf(1)
	pick := -1
	for k, d := range cdist {
		if d < delta {
			delta = d
			pick = k
		}
	}
	base := 0.0
	j0 := -1
	for {
		if pick == -1 || math.IsInf(delta, 1) {
			return -1, errors.New("assign: batch augment failed to reach a free column")
		}
		j1 := int(cidx[pick])
		nu--
		cidx[pick] = cidx[nu]
		cdist[pick] = cdist[nu]
		cv[pick] = cv[nu]
		stl = append(stl, j1)
		stlD = append(stlD, delta)
		base = delta
		if inc.colMatch[j1] == -1 {
			j0 = j1
			break
		}
		// Relax from the settled column's matched row, tracking the next
		// minimum in the same sweep.
		i0 := inc.colMatch[j1]
		row := inc.value[i0]
		off := base - inc.u[i0]
		ci, cd, vv := cidx[:nu], cdist[:nu], cv[:nu]
		d0, p0 := math.Inf(1), -1
		d1, p1 := math.Inf(1), -1
		k := 0
		for ; k+1 < nu; k += 2 {
			jA := ci[k]
			dA := cd[k]
			if cA := off - row[jA] - vv[k]; cA < dA {
				dA = cA
				cd[k] = cA
				way[jA] = j1
			}
			if dA < d0 {
				d0 = dA
				p0 = k
			}
			jB := ci[k+1]
			dB := cd[k+1]
			if cB := off - row[jB] - vv[k+1]; cB < dB {
				dB = cB
				cd[k+1] = cB
				way[jB] = j1
			}
			if dB < d1 {
				d1 = dB
				p1 = k + 1
			}
		}
		if k < nu {
			j := ci[k]
			d := cd[k]
			if c := off - row[j] - vv[k]; c < d {
				d = c
				cd[k] = c
				way[j] = j1
			}
			if d < d0 {
				d0 = d
				p0 = k
			}
		}
		if d1 < d0 {
			delta, pick = d1, p1
		} else {
			delta, pick = d0, p0
		}
	}
	inc.stl, inc.stlD = stl, stlD
	// Telescoped dual shifts for the settled columns, while colMatch
	// still names their pre-augment rows. The terminal free column
	// settled at distance base, so its shift is zero.
	for k, j := range stl {
		if inc.colMatch[j] == -1 {
			continue
		}
		shift := base - stlD[k]
		inc.u[inc.colMatch[j]] += shift
		inc.v[j] -= shift
	}
	// Find the winning source (the seed provider at the head of the
	// path), credit it the full distance, then flip the path.
	head := j0
	for way[head] != -1 {
		head = way[head]
	}
	winner := src[head]
	inc.u[winner] += base
	for j0 != -1 {
		j1 := way[j0]
		var r int
		if j1 == -1 {
			r = winner
		} else {
			r = inc.colMatch[j1]
		}
		inc.colMatch[j0] = r
		inc.rowMatch[r] = j0
		j0 = j1
	}
	return winner, nil
}

// SelfCheck verifies the solver's internal invariants — dual
// feasibility, tightness of matched edges, matching consistency, and
// all-zero dummy rows — and returns the first violation. It exists for
// tests and debugging; a non-nil error means a solver bug, not a caller
// error.
func (inc *Incremental) SelfCheck() error {
	const tol = 1e-9
	for i := 0; i < inc.m; i++ {
		j := inc.rowMatch[i]
		if j < 0 || j >= inc.m {
			return fmt.Errorf("assign: row %d unmatched", i)
		}
		if inc.colMatch[j] != i {
			return fmt.Errorf("assign: match arrays disagree at row %d / col %d", i, j)
		}
		if red := inc.cost(i, j) - inc.u[i] - inc.v[j]; math.Abs(red) > tol {
			return fmt.Errorf("assign: matched edge (%d, %d) not tight (reduced %g)", i, j, red)
		}
	}
	for i := inc.n; i < inc.m; i++ {
		for j, val := range inc.value[i] {
			if val != 0 {
				return fmt.Errorf("assign: dummy row %d has nonzero value at column %d", i, j)
			}
		}
	}
	for i := 0; i < inc.m; i++ {
		for j := 0; j < inc.m; j++ {
			if red := inc.cost(i, j) - inc.u[i] - inc.v[j]; red < -tol {
				return fmt.Errorf("assign: dual infeasible at (%d, %d): reduced %g", i, j, red)
			}
		}
	}
	return nil
}
