package assign

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplexKnownLP(t *testing.T) {
	// Maximize 3x + 2y s.t. x + y + s1 = 4, x + 3y + s2 = 6, all ≥ 0.
	// Optimum: x=4, y=0, obj=12.
	c := []float64{3, 2, 0, 0}
	a := [][]float64{
		{1, 1, 1, 0},
		{1, 3, 0, 1},
	}
	b := []float64{4, 6}
	x, obj, err := Simplex(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-12) > 1e-6 {
		t.Errorf("obj = %v, want 12", obj)
	}
	if math.Abs(x[0]-4) > 1e-6 || math.Abs(x[1]) > 1e-6 {
		t.Errorf("x = %v, want [4 0 ...]", x)
	}
}

func TestSimplexEqualityConstraints(t *testing.T) {
	// Maximize x + 2y s.t. x + y = 10, y ≤ 4 (via slack). Optimum: y=4,
	// x=6, obj=14.
	c := []float64{1, 2, 0}
	a := [][]float64{
		{1, 1, 0},
		{0, 1, 1},
	}
	b := []float64{10, 4}
	x, obj, err := Simplex(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-14) > 1e-6 {
		t.Errorf("obj = %v, want 14", obj)
	}
	if math.Abs(x[0]-6) > 1e-6 || math.Abs(x[1]-4) > 1e-6 {
		t.Errorf("x = %v", x)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	// x = 5 and x = 3 simultaneously.
	c := []float64{1}
	a := [][]float64{{1}, {1}}
	b := []float64{5, 3}
	if _, _, err := Simplex(c, a, b); err == nil {
		t.Error("expected infeasibility error")
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// Maximize x with only x − y = 1: x can grow forever.
	c := []float64{1, 0}
	a := [][]float64{{1, -1}}
	b := []float64{1}
	if _, _, err := Simplex(c, a, b); err == nil {
		t.Error("expected unboundedness error")
	}
}

func TestSimplexValidation(t *testing.T) {
	if _, _, err := Simplex(nil, nil, nil); err == nil {
		t.Error("expected error for empty program")
	}
	if _, _, err := Simplex([]float64{1}, [][]float64{}, []float64{}); err == nil {
		t.Error("expected error for no constraints")
	}
	if _, _, err := Simplex([]float64{1}, [][]float64{{1}}, []float64{-1}); err == nil {
		t.Error("expected error for negative rhs")
	}
	if _, _, err := Simplex([]float64{1}, [][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for dimension mismatch")
	}
	if _, _, err := Simplex([]float64{1, 1}, [][]float64{{1, 1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for rhs length mismatch")
	}
}

func TestSimplexRedundantConstraint(t *testing.T) {
	// Duplicate equality rows (rank-deficient): must still solve.
	c := []float64{2, 1}
	a := [][]float64{
		{1, 1},
		{1, 1},
	}
	b := []float64{3, 3}
	x, obj, err := Simplex(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-6) > 1e-6 {
		t.Errorf("obj = %v, want 6 (x=3, y=0)", obj)
	}
	if math.Abs(x[0]-3) > 1e-6 {
		t.Errorf("x = %v", x)
	}
}

func knownMatrix() [][]float64 {
	return [][]float64{
		{7, 4, 3},
		{6, 8, 5},
		{9, 4, 4},
	}
}

func TestSolversOnKnownMatrix(t *testing.T) {
	// Optimal total is 3+8+9 = 20 (0→2, 1→1, 2→0).
	want := 20.0
	for name, solve := range map[string]func([][]float64) ([]int, float64, error){
		"hungarian":  Hungarian,
		"exhaustive": Exhaustive,
		"lp":         LP,
	} {
		got, val, err := solve(knownMatrix())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(val-want) > 1e-6 {
			t.Errorf("%s: value = %v, want %v (assignment %v)", name, val, want, got)
		}
		seen := map[int]bool{}
		for _, j := range got {
			if seen[j] {
				t.Errorf("%s: duplicate task in %v", name, got)
			}
			seen[j] = true
		}
	}
}

func TestSolversAgreeOnRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 60; iter++ {
		n := 2 + rng.Intn(5)
		m := n + rng.Intn(3)
		value := make([][]float64, n)
		for i := range value {
			value[i] = make([]float64, m)
			for j := range value[i] {
				value[i][j] = math.Round(rng.Float64()*1000) / 10
			}
		}
		_, exVal, err := Exhaustive(value)
		if err != nil {
			t.Fatal(err)
		}
		_, huVal, err := Hungarian(value)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(huVal-exVal) > 1e-6 {
			t.Fatalf("iter %d: hungarian %v != exhaustive %v on %v", iter, huVal, exVal, value)
		}
		_, lpVal, err := LP(value)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lpVal-exVal) > 1e-6 {
			t.Fatalf("iter %d: lp %v != exhaustive %v on %v", iter, lpVal, exVal, value)
		}
	}
}

func TestRandomAssignment(t *testing.T) {
	value := knownMatrix()
	a, val, err := Random(value, 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, j := range a {
		if j < 0 || j >= 3 || seen[j] {
			t.Fatalf("invalid random assignment %v", a)
		}
		seen[j] = true
	}
	if val <= 0 {
		t.Errorf("value = %v", val)
	}
	// Deterministic per seed.
	b, _, err := Random(value, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Error("same seed should give same assignment")
		}
	}
	// Random is (almost surely) worse than optimal sometimes; over many
	// seeds its mean must be below the optimum.
	_, opt, _ := Exhaustive(value)
	sum := 0.0
	for s := int64(0); s < 50; s++ {
		_, v, err := Random(value, s)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	if sum/50 >= opt {
		t.Error("mean random value should be below the optimum")
	}
}

func TestMatrixValidation(t *testing.T) {
	for name, solve := range map[string]func([][]float64) ([]int, float64, error){
		"hungarian":  Hungarian,
		"exhaustive": Exhaustive,
		"lp":         LP,
	} {
		if _, _, err := solve(nil); err == nil {
			t.Errorf("%s: expected error for empty matrix", name)
		}
		if _, _, err := solve([][]float64{{1, 2}, {3}}); err == nil {
			t.Errorf("%s: expected error for ragged matrix", name)
		}
		if _, _, err := solve([][]float64{{1, 2}, {3, 4}, {5, 6}}); err == nil {
			t.Errorf("%s: expected error for more workers than tasks", name)
		}
		if _, _, err := solve([][]float64{{math.NaN()}}); err == nil {
			t.Errorf("%s: expected error for NaN entry", name)
		}
	}
	if _, _, err := Random(nil, 1); err == nil {
		t.Error("random: expected error for empty matrix")
	}
	if _, _, err := Exhaustive(make([][]float64, 12)); err == nil {
		t.Error("exhaustive: expected error for oversized problem")
	}
}

func TestRectangularAssignment(t *testing.T) {
	// 2 workers, 4 tasks: best is 9 (0→3) + 8 (1→1) = 17.
	value := [][]float64{
		{1, 2, 3, 9},
		{2, 8, 1, 7},
	}
	for name, solve := range map[string]func([][]float64) ([]int, float64, error){
		"hungarian": Hungarian,
		"lp":        LP,
	} {
		a, val, err := solve(value)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(val-17) > 1e-6 {
			t.Errorf("%s: value = %v, want 17 (assignment %v)", name, val, a)
		}
	}
}

func TestHungarianNegativeValues(t *testing.T) {
	value := [][]float64{
		{-5, -1},
		{-2, -8},
	}
	_, val, err := Hungarian(value)
	if err != nil {
		t.Fatal(err)
	}
	// Best: (0→1) + (1→0) = −3.
	if math.Abs(val-(-3)) > 1e-6 {
		t.Errorf("value = %v, want -3", val)
	}
}
