// Package assign provides the cluster manager's placement solvers: an
// exact Hungarian method, a two-phase dense simplex LP (the paper places
// applications with an LP solver, Section IV-B), an exhaustive search used
// by the Fig. 14 comparison, and the Random baseline policy.
package assign

import (
	"errors"
	"fmt"
	"math"
)

const simplexEps = 1e-9

// Simplex maximizes c·x subject to A·x = b, x ≥ 0, using the two-phase
// primal simplex method with Bland's rule (no cycling). All b[i] must be
// non-negative; multiply a row by -1 first if needed. It returns the
// optimal x and objective value, or an error when the program is
// infeasible or unbounded.
func Simplex(c []float64, a [][]float64, b []float64) ([]float64, float64, error) {
	m := len(a)
	if m == 0 {
		return nil, 0, errors.New("assign: no constraints")
	}
	n := len(c)
	if n == 0 {
		return nil, 0, errors.New("assign: no variables")
	}
	if len(b) != m {
		return nil, 0, errors.New("assign: constraint dimension mismatch")
	}
	for i, row := range a {
		if len(row) != n {
			return nil, 0, fmt.Errorf("assign: constraint row %d has %d entries, want %d", i, len(row), n)
		}
		if b[i] < 0 {
			return nil, 0, fmt.Errorf("assign: b[%d] = %v is negative; normalize rows first", i, b[i])
		}
	}

	// Tableau: m rows × (n structural + m artificial + 1 rhs) columns.
	total := n + m
	tab := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total+1)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][total] = b[i]
		basis[i] = n + i
	}

	// Phase 1: minimize the sum of artificials (maximize its negation).
	phase1 := make([]float64, total)
	for j := n; j < total; j++ {
		phase1[j] = -1
	}
	if err := runSimplex(tab, basis, phase1, total, n); err != nil {
		return nil, 0, fmt.Errorf("assign: phase 1: %w", err)
	}
	// Feasibility check: all artificials at zero.
	for i, bi := range basis {
		if bi >= n && tab[i][total] > simplexEps {
			return nil, 0, errors.New("assign: infeasible program")
		}
	}
	// Drive any artificial still basic (at zero) out of the basis.
	for i, bi := range basis {
		if bi < n {
			continue
		}
		pivoted := false
		for j := 0; j < n; j++ {
			if math.Abs(tab[i][j]) > simplexEps {
				pivot(tab, basis, i, j, total)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint: zero the row so it never pivots again.
			for j := 0; j <= total; j++ {
				tab[i][j] = 0
			}
		}
	}

	// Phase 2: maximize the real objective (artificials forbidden).
	phase2 := make([]float64, total)
	copy(phase2, c)
	if err := runSimplex(tab, basis, phase2, total, n); err != nil {
		return nil, 0, fmt.Errorf("assign: phase 2: %w", err)
	}

	x := make([]float64, n)
	for i, bi := range basis {
		if bi < n {
			x[bi] = tab[i][total]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += c[j] * x[j]
	}
	return x, obj, nil
}

// runSimplex performs primal simplex iterations on the tableau maximizing
// obj. Columns ≥ limit (artificials in phase 2) are never chosen as
// entering variables when limit < total width.
func runSimplex(tab [][]float64, basis []int, obj []float64, total, structural int) error {
	m := len(tab)
	// reduced[j] = obj[j] − Σᵢ obj[basis[i]]·tab[i][j]
	for iter := 0; ; iter++ {
		if iter > 10000*(total+m) {
			return errors.New("simplex iteration limit exceeded")
		}
		// Compute reduced costs and pick the entering column (Bland: the
		// lowest-indexed column with positive reduced cost).
		enter := -1
		for j := 0; j < total; j++ {
			if isBasic(basis, j) {
				continue
			}
			red := obj[j]
			for i := 0; i < m; i++ {
				if obj[basis[i]] != 0 {
					red -= obj[basis[i]] * tab[i][j]
				}
			}
			if red > simplexEps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return nil // optimal
		}
		// Ratio test (Bland: smallest ratio, ties by lowest basis index).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > simplexEps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < bestRatio-simplexEps ||
					(math.Abs(ratio-bestRatio) <= simplexEps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return errors.New("unbounded program")
		}
		pivot(tab, basis, leave, enter, total)
	}
}

func isBasic(basis []int, j int) bool {
	for _, b := range basis {
		if b == j {
			return true
		}
	}
	return false
}

// pivot makes column enter basic in row leave.
func pivot(tab [][]float64, basis []int, leave, enter, total int) {
	p := tab[leave][enter]
	for j := 0; j <= total; j++ {
		tab[leave][j] /= p
	}
	for i := range tab {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[leave][j]
		}
	}
	basis[leave] = enter
}
