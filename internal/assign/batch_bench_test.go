package assign

import (
	"math/rand"
	"testing"

	"pocolo/internal/obs"
)

// benchPodRepair measures a steady-state pod refresh: a 1024-host pod
// (square 1024×1024 value matrix, solver warm) with `dirty` job rows
// rewritten per round. Two precomputed value sets alternate so every
// iteration does the same shape of work without the solver converging
// to a fixed point. threshold 1 is the sequential per-line repair;
// threshold 2 forces the auction batch path. The Obs variants run the
// same workload with a live metrics registry attached, so comparing
// them against the plain variants prices the instrumentation itself.
func benchPodRepair(b *testing.B, dirty, threshold int) {
	benchPodRepairObs(b, dirty, threshold, nil)
}

func benchPodRepairObs(b *testing.B, dirty, threshold int, so *obs.SolveObs) {
	const m = 1024
	rng := rand.New(rand.NewSource(42))
	base := randBenchMatrix(rng, m, m)
	inc, err := NewIncremental(base)
	if err != nil {
		b.Fatal(err)
	}
	makeSet := func() []RowUpdate {
		rows := make([]RowUpdate, dirty)
		for k := 0; k < dirty; k++ {
			vals := make([]float64, m)
			for j := range vals {
				vals[j] = rng.Float64() * 100
			}
			// Spread dirty rows across the pod.
			rows[k] = RowUpdate{Index: k * (m / dirty), Values: vals}
		}
		return rows
	}
	setA, setB := makeSet(), makeSet()
	opts := BatchOptions{Threshold: threshold, Obs: so}
	b.ReportAllocs()
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		upd := setA
		if it%2 == 1 {
			upd = setB
		}
		if _, err := inc.ResolveBatch(upd, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func randBenchMatrix(rng *rand.Rand, n, m int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, m)
		for j := range v[i] {
			v[i][j] = rng.Float64() * 100
		}
	}
	return v
}

func BenchmarkPodRepair8Sequential(b *testing.B)   { benchPodRepair(b, 8, 1) }
func BenchmarkPodRepair8Auction(b *testing.B)      { benchPodRepair(b, 8, 2) }
func BenchmarkPodRepair64Sequential(b *testing.B)  { benchPodRepair(b, 64, 1) }
func BenchmarkPodRepair64Auction(b *testing.B)     { benchPodRepair(b, 64, 2) }
func BenchmarkPodRepair256Sequential(b *testing.B) { benchPodRepair(b, 256, 1) }
func BenchmarkPodRepair256Auction(b *testing.B)    { benchPodRepair(b, 256, 2) }

func BenchmarkPodRepair64AuctionObs(b *testing.B) {
	benchPodRepairObs(b, 64, 2, obs.NewSolveObs(obs.NewRegistry(), "pod-0"))
}
