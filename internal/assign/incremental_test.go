package assign

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, n, m int) [][]float64 {
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, m)
		for j := range v[i] {
			v[i][j] = rng.Float64() * 100
		}
	}
	return v
}

// checkAgainstHungarian asserts that the incremental solver's current
// assignment value matches a from-scratch Hungarian solve of the same
// matrix bit-for-bit, and that the solver's internal invariants hold.
func checkAgainstHungarian(t *testing.T, inc *Incremental) {
	t.Helper()
	if err := inc.SelfCheck(); err != nil {
		t.Fatalf("SelfCheck: %v", err)
	}
	fresh := make([][]float64, inc.Rows())
	for i := range fresh {
		fresh[i] = make([]float64, inc.Cols())
		for j := range fresh[i] {
			fresh[i][j] = inc.At(i, j)
		}
	}
	_, want, err := Hungarian(fresh)
	if err != nil {
		t.Fatalf("Hungarian: %v", err)
	}
	if got := inc.Total(); got != want {
		t.Fatalf("incremental total %v != Hungarian total %v (diff %g)", got, want, got-want)
	}
}

func TestIncrementalMatchesHungarianFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {2, 2}, {3, 7}, {8, 8}, {12, 20}} {
		inc, err := NewIncremental(randMatrix(rng, dims[0], dims[1]))
		if err != nil {
			t.Fatalf("%dx%d: %v", dims[0], dims[1], err)
		}
		checkAgainstHungarian(t, inc)
	}
}

// TestIncrementalPerturbationProperty is the satellite-required property
// test: after k random single-cell perturbations, the incremental solver
// matches a from-scratch assign.Hungarian solve in total value.
func TestIncrementalPerturbationProperty(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		m := n + rng.Intn(6) // rectangular about half the time
		inc, err := NewIncremental(randMatrix(rng, n, m))
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(30)
		for p := 0; p < k; p++ {
			i, j := rng.Intn(n), rng.Intn(m)
			if err := inc.SetCell(i, j, rng.Float64()*100); err != nil {
				t.Fatalf("seed %d perturbation %d: %v", seed, p, err)
			}
		}
		checkAgainstHungarian(t, inc)
	}
}

func TestIncrementalSetRowSetCol(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		n := 2 + rng.Intn(8)
		m := n + rng.Intn(4)
		inc, err := NewIncremental(randMatrix(rng, n, m))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 8; p++ {
			if rng.Intn(2) == 0 {
				row := make([]float64, m)
				for j := range row {
					row[j] = rng.Float64() * 100
				}
				if err := inc.SetRow(rng.Intn(n), row); err != nil {
					t.Fatal(err)
				}
			} else {
				col := make([]float64, n)
				for i := range col {
					col[i] = rng.Float64() * 100
				}
				if err := inc.SetCol(rng.Intn(m), col); err != nil {
					t.Fatal(err)
				}
			}
			checkAgainstHungarian(t, inc)
		}
	}
}

func TestIncrementalAddRemoveRows(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		m := 6 + rng.Intn(6)
		inc, err := NewIncremental(randMatrix(rng, 1+rng.Intn(3), m))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < 12; p++ {
			if inc.Rows() < inc.Cols() && (inc.Rows() == 1 || rng.Intn(2) == 0) {
				row := make([]float64, m)
				for j := range row {
					row[j] = rng.Float64() * 100
				}
				if _, err := inc.AddRow(row); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := inc.RemoveRow(rng.Intn(inc.Rows())); err != nil {
					t.Fatal(err)
				}
				if inc.Rows() == 0 {
					// An empty matrix has nothing to check; refill below.
					row := make([]float64, m)
					for j := range row {
						row[j] = rng.Float64() * 100
					}
					if _, err := inc.AddRow(row); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkAgainstHungarian(t, inc)
		}
	}
}

// TestIncrementalDegenerate covers tie-heavy small-integer matrices
// where many optima share the same value: the totals are exact integer
// sums, so equality with Hungarian is still bit-for-bit.
func TestIncrementalDegenerate(t *testing.T) {
	cases := [][][]float64{
		{{5}},                             // 1x1
		{{1, 1, 1}},                       // all-tie single row
		{{0, 0}, {0, 0}},                  // all-zero square
		{{1, 2}, {2, 1}},                  // symmetric swap
		{{3, 3, 3}, {3, 3, 3}},            // constant rectangular
		{{-1, -2, -3}, {-3, -2, -1}},      // all-negative values
		{{10, 0, 0}, {10, 0, 0}},          // duplicate rows forcing a tie split
		{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}, // identity
	}
	for ci, v := range cases {
		inc, err := NewIncremental(v)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		checkAgainstHungarian(t, inc)
		rng := rand.New(rand.NewSource(int64(ci)))
		for p := 0; p < 10; p++ {
			i, j := rng.Intn(inc.Rows()), rng.Intn(inc.Cols())
			if err := inc.SetCell(i, j, float64(rng.Intn(7)-3)); err != nil {
				t.Fatal(err)
			}
			checkAgainstHungarian(t, inc)
		}
	}
}

func TestIncrementalRemoveRowKeepsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inc, err := NewIncremental(randMatrix(rng, 6, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Remove the middle row: last row swaps into its slot.
	if err := inc.RemoveRow(2); err != nil {
		t.Fatal(err)
	}
	if inc.Rows() != 5 {
		t.Fatalf("Rows = %d, want 5", inc.Rows())
	}
	checkAgainstHungarian(t, inc)
	// Removing the last row must not touch anything else.
	if err := inc.RemoveRow(inc.Rows() - 1); err != nil {
		t.Fatal(err)
	}
	checkAgainstHungarian(t, inc)
}

func TestIncrementalErrors(t *testing.T) {
	inc, err := NewIncremental([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.SetCell(2, 0, 1); err == nil {
		t.Error("SetCell out-of-range row accepted")
	}
	if err := inc.SetCell(0, 0, math.NaN()); err == nil {
		t.Error("SetCell NaN accepted")
	}
	if err := inc.SetRow(0, []float64{1}); err == nil {
		t.Error("SetRow wrong length accepted")
	}
	if err := inc.SetCol(0, []float64{1, math.Inf(1)}); err == nil {
		t.Error("SetCol Inf accepted")
	}
	if _, err := inc.AddRow([]float64{1, 2}); err == nil {
		t.Error("AddRow beyond square accepted")
	}
	if err := inc.RemoveRow(5); err == nil {
		t.Error("RemoveRow out-of-range accepted")
	}
	if _, err := NewIncremental([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewIncremental(nil); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestIncrementalNoOpUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inc, err := NewIncremental(randMatrix(rng, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	before := inc.Assignment()
	// Writing identical values must leave the matching untouched.
	if err := inc.SetCell(1, 2, inc.At(1, 2)); err != nil {
		t.Fatal(err)
	}
	row := make([]float64, inc.Cols())
	for j := range row {
		row[j] = inc.At(0, j)
	}
	if err := inc.SetRow(0, row); err != nil {
		t.Fatal(err)
	}
	col := make([]float64, inc.Rows())
	for i := range col {
		col[i] = inc.At(i, 3)
	}
	if err := inc.SetCol(3, col); err != nil {
		t.Fatal(err)
	}
	after := inc.Assignment()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("no-op updates changed assignment: %v -> %v", before, after)
		}
	}
	// Lowering an unmatched cell keeps feasibility: must be O(1) no-op.
	var free int
	assigned := map[int]bool{}
	for _, j := range after {
		assigned[j] = true
	}
	for j := 0; j < inc.Cols(); j++ {
		if !assigned[j] {
			free = j
			break
		}
	}
	if err := inc.SetCell(0, free, inc.At(0, free)-50); err != nil {
		t.Fatal(err)
	}
	checkAgainstHungarian(t, inc)
}
