package assign_test

import (
	"fmt"

	"pocolo/internal/assign"
)

// ExampleHungarian solves a small placement: three best-effort apps onto
// three servers, maximizing total estimated throughput.
func ExampleHungarian() {
	value := [][]float64{
		// servers:  A   B   C
		{30, 44, 12}, // app 0
		{28, 41, 33}, // app 1
		{45, 40, 20}, // app 2
	}
	placement, total, err := assign.Hungarian(value)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(placement, total)
	// Output:
	// [1 2 0] 122
}

// ExampleLP solves the same assignment as a linear program; the assignment
// polytope has integral vertices, so simplex lands on the same optimum.
func ExampleLP() {
	value := [][]float64{
		{30, 44, 12},
		{28, 41, 33},
		{45, 40, 20},
	}
	placement, total, err := assign.LP(value)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(placement, total)
	// Output:
	// [1 2 0] 122
}

// ExampleSimplex maximizes a tiny linear program in standard equality form.
func ExampleSimplex() {
	// Maximize 3x + 2y subject to x + y + s1 = 4 and x + 3y + s2 = 6.
	c := []float64{3, 2, 0, 0}
	a := [][]float64{
		{1, 1, 1, 0},
		{1, 3, 0, 1},
	}
	b := []float64{4, 6}
	x, obj, err := assign.Simplex(c, a, b)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("x=%.0f y=%.0f objective=%.0f\n", x[0], x[1], obj)
	// Output:
	// x=4 y=0 objective=12
}
