package assign

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pocolo/internal/obs"
	"pocolo/internal/parallel"
)

// DefaultBatchThreshold is the dirty-line count at or above which
// ResolveBatch switches from the sequential per-line repair to the
// parallel auction re-solve. Below it, a handful of warm augmenting
// passes beats the auction's bidding rounds; above it, the per-line
// passes dominate a pod refresh and the auction wins by a widening
// margin. The crossover sits near a dozen lines on a 1k-column pod.
const DefaultBatchThreshold = 16

// RowUpdate replaces one row of the value matrix (one value per
// column), exactly like SetRow.
type RowUpdate struct {
	Index  int
	Values []float64
}

// ColUpdate replaces one column of the value matrix (one value per real
// row), exactly like SetCol.
type ColUpdate struct {
	Index  int
	Values []float64
}

// BatchOptions tunes ResolveBatch.
type BatchOptions struct {
	// Threshold is the dirty-line count at or above which the auction
	// path engages: 0 means DefaultBatchThreshold, 1 forces the
	// sequential per-line path (the old behavior), anything else is the
	// literal cutover count.
	Threshold int
	// Workers bounds the parallel bid phase (<= 0 selects GOMAXPROCS,
	// 1 keeps the bidding on the calling goroutine). The result is
	// identical for every setting; only wall-clock changes.
	Workers int
	// Obs, when non-nil, receives the call's latency and work counters.
	// The nil default costs nothing on the hot path.
	Obs *obs.SolveObs
}

// BatchStats reports what one ResolveBatch call did.
type BatchStats struct {
	// DirtyRows and DirtyCols count the lines whose values actually
	// changed (no-op updates are dropped, matching SetRow/SetCol).
	DirtyRows int
	DirtyCols int
	// AuctionRounds counts synchronous bidding rounds across all
	// ε-scaling phases; zero on the sequential path.
	AuctionRounds int
	// CleanupAugments counts the sequential augmenting passes that
	// finished the job after the auction: rows whose auction match was
	// not exactly tight plus any rows left free by the round cap.
	CleanupAugments int
	// Sequential is true when the call took the per-line path.
	Sequential bool
}

// batchState is ResolveBatch scratch, reused across calls.
type batchState struct {
	rowDirty     []bool    // internal row i's values changed
	colDirty     []bool    // column j's values changed
	participated []bool    // row was detached by this batch
	free         []int     // current free (unmatched) rows, ascending
	spill        []int     // next round's free rows under construction
	cols         []int     // released columns (the auction's market), ascending
	lpv          []float64 // per column: local auction price (as a v value)
	mn           []float64 // per row: min reduced cost under the live duals
	hintRM       []int     // per row: auction-hinted column, -1 if none
	hintCM       []int     // per column: auction-hinted row, -1 if none
	bidCol       []int     // per free-list slot: column bid on
	bidPrice     []float64 // per free-list slot: offered price
	winBid       []float64 // per column: best bid this round
	winRow       []int     // per column: bidder holding winBid
	bidRound     []int     // per column: stamp marking winBid's round
	touched      []int     // columns with at least one bid this round
	stamp        int       // monotone round stamp, never reset
}

func newBatchState(m int) *batchState {
	return &batchState{
		rowDirty:     make([]bool, m),
		colDirty:     make([]bool, m),
		participated: make([]bool, m),
		free:         make([]int, 0, m),
		spill:        make([]int, 0, m),
		cols:         make([]int, 0, m),
		lpv:          make([]float64, m),
		mn:           make([]float64, m),
		hintRM:       make([]int, m),
		hintCM:       make([]int, m),
		bidCol:       make([]int, m),
		bidPrice:     make([]float64, m),
		winBid:       make([]float64, m),
		winRow:       make([]int, m),
		bidRound:     make([]int, m),
		touched:      make([]int, 0, m),
	}
}

// ResolveBatch applies a whole refresh's worth of row and column
// updates in one call and restores optimality. Updates are applied in
// order (rows first, then columns, like the per-line path), no-op lines
// are dropped, and an invalid update returns an error before anything
// is mutated.
//
// Below the dirty-line threshold the call is exactly the sequential
// per-line repair: SetRow per dirty row, SetCol per dirty column. At or
// above it, every dirty line is detached at once and re-solved by a
// parallel ε-scaling auction (see auctionRepair) warm-started from the
// live duals, then finished with sequential Jonker–Volgenant augmenting
// passes — so the final assignment value is bit-identical to what the
// sequential path reports (the permutation may differ only among
// equal-value optima, which the canonical Total sum makes invisible).
func (inc *Incremental) ResolveBatch(rows []RowUpdate, cols []ColUpdate, opts BatchOptions) (BatchStats, error) {
	var st BatchStats
	if opts.Obs != nil {
		start := time.Now()
		// The deferred closure reads st after the function body has filled
		// it in, so the recorded counters are the final ones.
		defer func() {
			opts.Obs.Record(time.Since(start), st.DirtyRows+st.DirtyCols, st.AuctionRounds, st.CleanupAugments)
		}()
	}
	// Validate every update first so an error never leaves the solver
	// partially mutated.
	for _, r := range rows {
		if r.Index < 0 || r.Index >= inc.n {
			return st, fmt.Errorf("assign: batch row %d outside %d rows", r.Index, inc.n)
		}
		if len(r.Values) != inc.m {
			return st, fmt.Errorf("assign: batch row %d has %d values, want %d", r.Index, len(r.Values), inc.m)
		}
		for j, val := range r.Values {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				return st, fmt.Errorf("assign: non-finite value at (%d, %d)", r.Index, j)
			}
		}
	}
	for _, c := range cols {
		if c.Index < 0 || c.Index >= inc.m {
			return st, fmt.Errorf("assign: batch column %d outside %d columns", c.Index, inc.m)
		}
		if len(c.Values) != inc.n {
			return st, fmt.Errorf("assign: batch column %d has %d values, want %d", c.Index, len(c.Values), inc.n)
		}
		for i, val := range c.Values {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				return st, fmt.Errorf("assign: non-finite value at (%d, %d)", i, c.Index)
			}
		}
	}

	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultBatchThreshold
	}
	if threshold < 0 {
		threshold = 1
	}

	// Count the lines that would actually change. Duplicate indices are
	// legal (later updates win, as on the per-line path); each index
	// counts once toward the threshold decision.
	dirtyLines := 0
	if threshold > 1 && inc.m >= 2 {
		seenRow := make(map[int]bool, len(rows))
		for _, r := range rows {
			if seenRow[r.Index] {
				continue
			}
			if !equalRow(inc.value[r.Index], r.Values) {
				seenRow[r.Index] = true
				dirtyLines++
			}
		}
		seenCol := make(map[int]bool, len(cols))
		for _, c := range cols {
			if seenCol[c.Index] {
				continue
			}
			for i, val := range c.Values {
				if inc.value[i][c.Index] != val {
					seenCol[c.Index] = true
					dirtyLines++
					break
				}
			}
		}
	}

	if threshold == 1 || inc.m < 2 || dirtyLines < threshold {
		// Sequential per-line path: the old refresh loop, line by line.
		st.Sequential = true
		for _, r := range rows {
			changed := !equalRow(inc.value[r.Index], r.Values)
			if err := inc.SetRow(r.Index, r.Values); err != nil {
				return st, err
			}
			if changed {
				st.DirtyRows++
			}
		}
		for _, c := range cols {
			changed := false
			for i, val := range c.Values {
				if inc.value[i][c.Index] != val {
					changed = true
					break
				}
			}
			if err := inc.SetCol(c.Index, c.Values); err != nil {
				return st, err
			}
			if changed {
				st.DirtyCols++
			}
		}
		return st, nil
	}

	return inc.auctionRepair(rows, cols, opts.Workers)
}

func equalRow(a, b []float64) bool {
	for i, v := range a {
		if b[i] != v {
			return false
		}
	}
	return true
}

// auctionRepair is the batch path: write every update, detach every
// dirty line at once, run the parallel ε-scaling auction over the
// released columns, commit the auction matches that are exactly tight
// under the live duals, and finish with multi-source JV augmenting
// passes for the rest.
//
// Correctness rests on four facts. First, detaching rows and repairing
// released-column potentials never breaks dual feasibility or the
// tightness of the remaining matched edges: each released column's
// potential becomes the min reduced cost over the still-matched rows
// (the same repair SetCol performs, minus the detached rows, whose
// stale potentials are garbage), which is the largest feasible value.
// Second, the auction trades on its own local price board — the live
// duals never move during bidding — so however the bidding goes, the
// solver state it started from is intact. Third, a hinted match (i, j)
// is committed only when its edge achieves min_jj(c(i,jj) − v[jj])
// exactly; then u[i] is that min, the edge is certifiably tight, the
// row is feasible everywhere, and distinct hints target distinct
// columns, so the commits extend the partial matching validly. Fourth,
// the multi-source augmenting passes preserve the invariants per pass
// (see augmentBatch) and tolerate stale source potentials. The final
// state is a perfect matching of tight edges under feasible duals: the
// exact optimum, same as the sequential path.
func (inc *Incremental) auctionRepair(rows []RowUpdate, cols []ColUpdate, workers int) (BatchStats, error) {
	var st BatchStats
	m := inc.m
	if inc.batch == nil || len(inc.batch.rowDirty) != m {
		inc.batch = newBatchState(m)
	}
	bs := inc.batch
	for i := 0; i < m; i++ {
		bs.rowDirty[i] = false
		bs.colDirty[i] = false
		bs.participated[i] = false
	}

	// Write every update in order, recording which lines changed.
	for _, r := range rows {
		for j, val := range r.Values {
			if inc.value[r.Index][j] != val {
				inc.value[r.Index][j] = val
				bs.rowDirty[r.Index] = true
			}
		}
	}
	for _, c := range cols {
		for i, val := range c.Values {
			if inc.value[i][c.Index] != val {
				inc.value[i][c.Index] = val
				bs.colDirty[c.Index] = true
			}
		}
	}

	// Detach every dirty row and every dirty column's matched row.
	for i := 0; i < m; i++ {
		if bs.rowDirty[i] {
			st.DirtyRows++
			bs.participated[i] = true
		}
	}
	for j := 0; j < m; j++ {
		if bs.colDirty[j] {
			st.DirtyCols++
			bs.participated[inc.colMatch[j]] = true
		}
	}
	bs.free = bs.free[:0]
	for i := 0; i < m; i++ {
		if !bs.participated[i] {
			continue
		}
		bs.free = append(bs.free, i)
		if j := inc.rowMatch[i]; j >= 0 {
			inc.colMatch[j] = -1
			inc.rowMatch[i] = -1
		}
	}
	if len(bs.free) == 0 {
		return st, nil
	}

	// Repair the potential of every released column — dirty columns and
	// the columns freed by detaching dirty rows — to the tightest
	// feasible value: the min reduced cost over the rows that are still
	// matched. Dirty columns need the repair for feasibility under
	// their new values; freed columns need it so stale-high potentials
	// don't leave them looking expensive, which would make every
	// augmenting pass wade through the owned columns before reaching a
	// free one.
	bs.cols = bs.cols[:0]
	for j := 0; j < m; j++ {
		if !bs.colDirty[j] && inc.colMatch[j] != -1 {
			continue
		}
		if inc.colMatch[j] == -1 {
			bs.cols = append(bs.cols, j)
		}
		minRed := math.Inf(1)
		for i := 0; i < m; i++ {
			if bs.participated[i] {
				continue
			}
			if red := inc.cost(i, j) - inc.u[i]; red < minRed {
				minRed = red
			}
		}
		if math.IsInf(minRed, 1) {
			// Every row is detached: no matched row constrains v, and
			// the augmenting passes will set whatever they need.
			continue
		}
		inc.v[j] = minRed
	}

	// Each free row's min reduced cost under the live duals, computed
	// once, in parallel: the commit test below needs it, and it is the
	// row's exact-tightness bar for any column. Reads are against fixed
	// state; writes land in index-disjoint slots.
	nf := len(bs.free)
	_ = parallel.ForEach(nf, workers, func(k int) error {
		i := bs.free[k]
		row := inc.value[i]
		mn := math.Inf(1)
		for j := 0; j < m; j++ {
			if red := -row[j] - inc.v[j]; red < mn {
				mn = red
			}
		}
		bs.mn[i] = mn
		return nil
	})

	// Value span over the released columns sets the ε scale. A zero
	// span (e.g. only dummy rows detached) makes bidding pointless.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range bs.free {
		row := inc.value[i]
		for _, j := range bs.cols {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
	}
	if span := hi - lo; span > 0 && len(bs.free) >= 2 {
		st.AuctionRounds = inc.runAuction(bs, span, workers)
		// Commit every hinted match that is exactly tight under the
		// live duals; everything else goes to the augmenting passes.
		for _, j := range bs.cols {
			i := bs.hintCM[j]
			if i == -1 {
				continue
			}
			if -inc.value[i][j]-inc.v[j] == bs.mn[i] {
				inc.u[i] = bs.mn[i]
				inc.rowMatch[i] = j
				inc.colMatch[j] = i
			}
		}
	}

	// Multi-source augmenting passes for whatever was not committed.
	bs.spill = bs.spill[:0]
	for _, i := range bs.free {
		if inc.rowMatch[i] == -1 {
			bs.spill = append(bs.spill, i)
		}
	}
	passes, err := inc.augmentBatch(bs.spill)
	st.CleanupAugments = passes
	return st, err
}

// runAuction runs the synchronous parallel ε-scaling auction: the free
// rows bid for the released columns on a local price board seeded from
// the live duals, and the hinted matching lands in bs.hintRM/hintCM.
// It returns the number of bidding rounds.
//
// Local prices are p[j] = −lpv[j]; a row's profit for column j is
// value[i][j] + lpv[j]. Each round every free row computes its best
// and second-best profit over the released columns and bids
// p[best] + (best − second) + ε. The bid phase fans over the worker
// pool — reads go against the round-start prices, writes land in
// index-disjoint slots — then bids resolve sequentially: per column
// the highest bid wins, ties to the lowest row index, so the outcome
// is deterministic and independent of the worker count. Winners
// displace previous hint-holders into the free pool; prices only rise.
// Phases shrink ε from span/8 by 5× down to span/(2·columns),
// detaching ε-CS violators between phases; a round cap bounds
// pathological price wars, leaving leftovers to the augmenting passes.
//
// Confining the market to the released columns keeps rounds at
// O(bidders × released) and, more importantly, keeps the bidding from
// displacing rows outside the batch: an unconfined auction on a warm
// solver cascades — each displaced clean row displaces another — and
// measures slower than not running it at all.
func (inc *Incremental) runAuction(bs *batchState, span float64, workers int) int {
	nc := len(bs.cols)
	for _, i := range bs.free {
		bs.hintRM[i] = -1
	}
	for _, j := range bs.cols {
		bs.hintCM[j] = -1
		bs.lpv[j] = inc.v[j]
	}
	eps := span / 8
	epsMin := span / float64(2*nc)
	maxRounds := 16*nc + 64
	rounds := 0
	pool := append(bs.spill[:0], bs.free...)
	for phase := 0; ; phase++ {
		if phase > 0 {
			if eps <= epsMin || rounds >= maxRounds {
				break
			}
			eps /= 5
			if eps < epsMin {
				eps = epsMin
			}
			// Detach hinted matches violating the tighter ε-CS.
			for _, j := range bs.cols {
				i := bs.hintCM[j]
				if i == -1 {
					continue
				}
				row := inc.value[i]
				best := math.Inf(-1)
				for _, jj := range bs.cols {
					if p := row[jj] + bs.lpv[jj]; p > best {
						best = p
					}
				}
				if row[j]+bs.lpv[j] < best-eps {
					bs.hintRM[i] = -1
					bs.hintCM[j] = -1
					pool = append(pool, i)
				}
			}
			if len(pool) == 0 {
				continue
			}
			sort.Ints(pool)
		}
		for len(pool) > 0 && rounds < maxRounds {
			rounds++
			bs.stamp++
			stamp := bs.stamp
			np := len(pool)
			_ = parallel.ForEach(np, workers, func(k int) error {
				row := inc.value[pool[k]]
				bestK := 0
				bestP := row[bs.cols[0]] + bs.lpv[bs.cols[0]]
				secondP := math.Inf(-1)
				for kk := 1; kk < nc; kk++ {
					j := bs.cols[kk]
					if p := row[j] + bs.lpv[j]; p > bestP {
						secondP = bestP
						bestP, bestK = p, kk
					} else if p > secondP {
						secondP = p
					}
				}
				j := bs.cols[bestK]
				bs.bidCol[k] = j
				bs.bidPrice[k] = -bs.lpv[j] + (bestP - secondP) + eps
				return nil
			})
			// Resolve in ascending free-row order: strict improvement
			// keeps the lowest-index bidder on ties.
			bs.touched = bs.touched[:0]
			for k := 0; k < np; k++ {
				j := bs.bidCol[k]
				if bs.bidRound[j] == stamp {
					if bs.bidPrice[k] > bs.winBid[j] {
						bs.winBid[j] = bs.bidPrice[k]
						bs.winRow[j] = pool[k]
					}
					continue
				}
				bs.bidRound[j] = stamp
				bs.winBid[j] = bs.bidPrice[k]
				bs.winRow[j] = pool[k]
				bs.touched = append(bs.touched, j)
			}
			sort.Ints(bs.touched)
			for _, j := range bs.touched {
				r := bs.winRow[j]
				if prev := bs.hintCM[j]; prev != -1 {
					bs.hintRM[prev] = -1
				}
				bs.hintCM[j] = r
				bs.hintRM[r] = j
				bs.lpv[j] = -bs.winBid[j]
			}
			// Next pool: every participant without a hint — displaced
			// holders plus this round's losers. bs.free is ascending, so
			// the filtered pool is too.
			pool = pool[:0]
			for _, i := range bs.free {
				if bs.hintRM[i] == -1 {
					pool = append(pool, i)
				}
			}
		}
		if rounds >= maxRounds {
			break
		}
		if eps <= epsMin && len(pool) == 0 {
			break
		}
	}
	return rounds
}
