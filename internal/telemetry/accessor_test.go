package telemetry

import (
	"testing"
	"time"
)

// TestAtWraparound exercises the bounded-ring head/n bookkeeping through
// a full eviction cycle: before wrap, exactly at capacity, and well past
// it, At(i) must always return the i-th oldest retained point.
func TestAtWraparound(t *testing.T) {
	base := time.Unix(0, 0).UTC()
	s := NewBoundedSeries("x", 4)
	appendN := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := s.Append(base.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
	}
	check := func(oldest int) {
		t.Helper()
		n := s.Len()
		for i := 0; i < n; i++ {
			p, ok := s.At(i)
			if !ok {
				t.Fatalf("At(%d) not ok with %d retained", i, n)
			}
			if want := float64(oldest + i); p.Value != want {
				t.Fatalf("At(%d) = %g, want %g", i, p.Value, want)
			}
			if want := base.Add(time.Duration(oldest+i) * time.Second); !p.Time.Equal(want) {
				t.Fatalf("At(%d).Time = %v, want %v", i, p.Time, want)
			}
		}
		if _, ok := s.At(n); ok {
			t.Fatalf("At(%d) ok past the end", n)
		}
		if _, ok := s.At(-1); ok {
			t.Fatal("At(-1) ok")
		}
	}

	check(0) // empty
	appendN(1, 3)
	check(1) // partially filled, no wrap
	appendN(4, 4)
	check(1) // exactly full, head still 0
	appendN(5, 5)
	check(2) // first eviction
	appendN(6, 11)
	check(8) // head has lapped the ring
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}

func TestIterate(t *testing.T) {
	base := time.Unix(0, 0).UTC()
	s := NewBoundedSeries("x", 3)
	for i := 1; i <= 5; i++ {
		if err := s.Append(base.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got []float64
	s.Iterate(func(p Point) bool {
		got = append(got, p.Value)
		return true
	})
	if len(got) != 3 || got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Fatalf("Iterate saw %v, want [3 4 5]", got)
	}
	// Early stop.
	var count int
	s.Iterate(func(Point) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early-stop Iterate ran %d times", count)
	}
	// Unbounded series iterates in append order; empty series never
	// calls fn.
	u := NewSeries("u")
	u.Iterate(func(Point) bool {
		t.Fatal("fn called on empty series")
		return true
	})
	for i := 1; i <= 3; i++ {
		_ = u.Append(base.Add(time.Duration(i)*time.Second), float64(i))
	}
	var sum float64
	u.Iterate(func(p Point) bool {
		sum += p.Value
		return true
	})
	if sum != 6 {
		t.Fatalf("unbounded Iterate sum = %g", sum)
	}
	// At agrees with Last on the newest point.
	lastAt, ok1 := u.At(u.Len() - 1)
	last, ok2 := u.Last()
	if !ok1 || !ok2 || lastAt != last {
		t.Fatalf("At(n-1) = %v,%v but Last = %v,%v", lastAt, ok1, last, ok2)
	}
}
