package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("power")
	if s.Name() != "power" {
		t.Errorf("Name = %q", s.Name())
	}
	start := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		if err := s.Append(start.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 5 {
		t.Errorf("Len = %d", s.Len())
	}
	pts := s.Points()
	if len(pts) != 5 || pts[4].Value != 4 {
		t.Errorf("Points = %v", pts)
	}
	vals := s.Values()
	if len(vals) != 5 || vals[2] != 2 {
		t.Errorf("Values = %v", vals)
	}
	if got := s.Max(); got != 4 {
		t.Errorf("Max = %v", got)
	}
}

func TestSeriesOutOfOrderRejected(t *testing.T) {
	s := NewSeries("x")
	start := time.Unix(100, 0)
	if err := s.Append(start, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(start.Add(-time.Second), 2); err == nil {
		t.Error("expected out-of-order error")
	}
	if s.Len() != 1 {
		t.Error("out-of-order point must be dropped")
	}
	// Equal timestamps are allowed.
	if err := s.Append(start, 3); err != nil {
		t.Errorf("equal timestamp rejected: %v", err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	s := NewSeries("w")
	if s.TimeWeightedMean() != 0 {
		t.Error("empty series mean should be 0")
	}
	start := time.Unix(0, 0)
	if err := s.Append(start, 100); err != nil {
		t.Fatal(err)
	}
	if got := s.TimeWeightedMean(); got != 100 {
		t.Errorf("single point mean = %v", got)
	}
	// 100 for 10s, then 0 for 30s => (1000+0)/40 = 25.
	if err := s.Append(start.Add(10*time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(start.Add(40*time.Second), 7); err != nil {
		t.Fatal(err)
	}
	if got := s.TimeWeightedMean(); math.Abs(got-25) > 1e-9 {
		t.Errorf("TimeWeightedMean = %v, want 25", got)
	}
}

func TestTimeWeightedMeanDegenerateTimestamps(t *testing.T) {
	s := NewSeries("deg")
	at := time.Unix(5, 0)
	for _, v := range []float64{1, 2, 3} {
		if err := s.Append(at, v); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.TimeWeightedMean(); math.Abs(got-2) > 1e-9 {
		t.Errorf("degenerate mean = %v, want plain mean 2", got)
	}
}

func TestSeriesMaxEmptyAndNegative(t *testing.T) {
	s := NewSeries("neg")
	if s.Max() != 0 {
		t.Error("empty Max should be 0")
	}
	if err := s.Append(time.Unix(0, 0), -5); err != nil {
		t.Fatal(err)
	}
	if got := s.Max(); got != -5 {
		t.Errorf("Max of all-negative series = %v, want -5", got)
	}
}

func TestBoundedSeriesEvictsOldest(t *testing.T) {
	s := NewBoundedSeries("ring", 3)
	if s.Cap() != 3 {
		t.Errorf("Cap = %d, want 3", s.Cap())
	}
	start := time.Unix(0, 0)
	for i := 0; i < 10; i++ {
		if err := s.Append(start.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
		wantLen := i + 1
		if wantLen > 3 {
			wantLen = 3
		}
		if s.Len() != wantLen {
			t.Fatalf("after %d appends Len = %d, want %d", i+1, s.Len(), wantLen)
		}
	}
	vals := s.Values()
	if len(vals) != 3 || vals[0] != 7 || vals[1] != 8 || vals[2] != 9 {
		t.Errorf("Values = %v, want [7 8 9]", vals)
	}
	pts := s.Points()
	if len(pts) != 3 || !pts[0].Time.Equal(start.Add(7*time.Second)) {
		t.Errorf("Points = %v", pts)
	}
	if got := s.Max(); got != 9 {
		t.Errorf("Max = %v, want 9", got)
	}
	if last, ok := s.Last(); !ok || last.Value != 9 {
		t.Errorf("Last = %v, %v", last, ok)
	}
}

func TestBoundedSeriesOutOfOrderAndAggregates(t *testing.T) {
	s := NewBoundedSeries("ring", 2)
	start := time.Unix(0, 0)
	if err := s.Append(start.Add(10*time.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(start, 2); err == nil {
		t.Error("expected out-of-order error after wrap reference point")
	}
	if err := s.Append(start.Add(20*time.Second), 3); err != nil {
		t.Fatal(err)
	}
	// Ring is full; evict and keep aggregating over the retained window:
	// value 3 holds for 10 s before 5 arrives.
	if err := s.Append(start.Add(30*time.Second), 5); err != nil {
		t.Fatal(err)
	}
	if got := s.TimeWeightedMean(); math.Abs(got-3) > 1e-9 {
		t.Errorf("TimeWeightedMean = %v, want 3", got)
	}
}

func TestBoundedSeriesInvalidCapacityFallsBack(t *testing.T) {
	s := NewBoundedSeries("x", 0)
	if s.Cap() != 0 {
		t.Errorf("Cap = %d, want unbounded fallback", s.Cap())
	}
	start := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		if err := s.Append(start.Add(time.Duration(i)*time.Second), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 {
		t.Errorf("Len = %d, want 100 (unbounded)", s.Len())
	}
}

func TestSeriesLast(t *testing.T) {
	s := NewSeries("last")
	if _, ok := s.Last(); ok {
		t.Error("empty series should have no last point")
	}
	at := time.Unix(3, 0)
	if err := s.Append(at, 42); err != nil {
		t.Fatal(err)
	}
	if last, ok := s.Last(); !ok || last.Value != 42 || !last.Time.Equal(at) {
		t.Errorf("Last = %v, %v", last, ok)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(2.5)
	c.Add(-10) // ignored
	if got := c.Total(); got != 7.5 {
		t.Errorf("Total = %v, want 7.5", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	s := NewSeries("conc")
	var c Counter
	var wg sync.WaitGroup
	start := time.Unix(0, 0)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				// Concurrent appends may race on ordering; errors are fine,
				// crashes are not.
				_ = s.Append(start.Add(time.Duration(i)*time.Millisecond), float64(i))
				c.Add(1)
				_ = s.Values()
			}
		}()
	}
	wg.Wait()
	if c.Total() != 2000 {
		t.Errorf("counter total = %v, want 2000", c.Total())
	}
	if s.Len() == 0 {
		t.Error("series should have points")
	}
}
