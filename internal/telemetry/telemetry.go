// Package telemetry provides the lightweight measurement plumbing the
// simulated cluster exports: append-only time series with time-weighted
// aggregation and monotonic counters. Private datacenters collect exactly
// this kind of per-application performance and power telemetry at fine
// granularity (the paper cites Dynamo and WSMeter); the experiments harness
// reads these series to regenerate the paper's figures, and the control
// plane's agents expose them over HTTP in Prometheus text format.
package telemetry

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Point is one time-series observation.
type Point struct {
	Time  time.Time
	Value float64
}

// Series is an append-only time series. It is safe for concurrent use.
//
// A series is unbounded by default — the experiments harness reads the
// whole timeline back. Long-running producers (the control-plane agents)
// use NewBoundedSeries instead, which retains only the most recent
// observations in a fixed-size ring.
type Series struct {
	name string

	mu sync.Mutex
	// Unbounded mode (cap == 0): pts grows by append.
	// Bounded mode (cap > 0): pts is a ring of size cap; head indexes the
	// oldest retained point and n counts the points held.
	pts  []Point
	cap  int
	head int
	n    int
}

// NewSeries creates a named, unbounded series.
func NewSeries(name string) *Series {
	return &Series{name: name}
}

// NewBoundedSeries creates a named series retaining only the most recent
// capacity observations (a ring buffer). A capacity below one falls back
// to an unbounded series.
func NewBoundedSeries(name string, capacity int) *Series {
	if capacity < 1 {
		return NewSeries(name)
	}
	return &Series{name: name, cap: capacity}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Reserve grows an unbounded series' backing array so at least n points
// can be appended without reallocating. Producers that know their run
// length (the evaluation harness appends one point per engine tick) call
// this once so the per-tick append path allocates nothing. No-op for
// bounded series and for capacities already reserved.
func (s *Series) Reserve(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap > 0 || n <= cap(s.pts) {
		return
	}
	pts := make([]Point, len(s.pts), n)
	copy(pts, s.pts)
	s.pts = pts
}

// Cap returns the retention capacity, or 0 for an unbounded series.
func (s *Series) Cap() int { return s.cap }

// size returns the number of retained points. Callers must hold s.mu.
func (s *Series) size() int {
	if s.cap > 0 {
		return s.n
	}
	return len(s.pts)
}

// at returns the i-th oldest retained point. Callers must hold s.mu.
func (s *Series) at(i int) Point {
	if s.cap > 0 {
		return s.pts[(s.head+i)%s.cap]
	}
	return s.pts[i]
}

// Append adds an observation. Timestamps should be non-decreasing; callers
// appending out of order get an error and the point is dropped. A bounded
// series evicts its oldest point once full.
func (s *Series) Append(t time.Time, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.size(); n > 0 && t.Before(s.at(n-1).Time) {
		return errors.New("telemetry: out-of-order append")
	}
	if s.cap == 0 {
		s.pts = append(s.pts, Point{Time: t, Value: v})
		return nil
	}
	if s.pts == nil {
		s.pts = make([]Point, s.cap)
	}
	if s.n < s.cap {
		s.pts[(s.head+s.n)%s.cap] = Point{Time: t, Value: v}
		s.n++
		return nil
	}
	s.pts[s.head] = Point{Time: t, Value: v}
	s.head = (s.head + 1) % s.cap
	return nil
}

// Len returns the number of retained points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size()
}

// At returns the i-th oldest retained point (0 = oldest). The index is
// in retained positions: after a bounded series wraps, At(0) is the
// oldest point still held, not the first ever appended.
func (s *Series) At(i int) (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= s.size() {
		return Point{}, false
	}
	return s.at(i), true
}

// Iterate calls fn on each retained point, oldest first, stopping early
// when fn returns false. Unlike Points it allocates nothing. The series
// lock is held for the whole iteration, so fn must not call back into
// the series.
func (s *Series) Iterate(fn func(Point) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < s.size(); i++ {
		if !fn(s.at(i)) {
			return
		}
	}
}

// Last returns the most recent observation, if any.
func (s *Series) Last() (Point, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.size()
	if n == 0 {
		return Point{}, false
	}
	return s.at(n - 1), true
}

// Points returns a copy of the retained observations, oldest first.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, s.size())
	for i := range out {
		out[i] = s.at(i)
	}
	return out
}

// Values returns a copy of the retained observation values, oldest first.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, s.size())
	for i := range out {
		out[i] = s.at(i).Value
	}
	return out
}

// TimeWeightedMean returns the mean of the retained window weighting each
// value by the time it held (piecewise-constant, left-continuous). A series
// with fewer than two points returns the plain mean of what it has.
func (s *Series) TimeWeightedMean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.size()
	switch n {
	case 0:
		return 0
	case 1:
		return s.at(0).Value
	}
	var weighted, total float64
	for i := 0; i < n-1; i++ {
		dt := s.at(i + 1).Time.Sub(s.at(i).Time).Seconds()
		if dt <= 0 {
			continue
		}
		weighted += s.at(i).Value * dt
		total += dt
	}
	if total == 0 {
		// All points share one timestamp; fall back to the plain mean.
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += s.at(i).Value
		}
		return sum / float64(n)
	}
	return weighted / total
}

// Max returns the largest retained value, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for i := 0; i < s.size(); i++ {
		if v := s.at(i).Value; i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Counter is a monotonically increasing accumulator (e.g. completed
// best-effort operations). It is safe for concurrent use; Add is a
// lock-free CAS loop over a single atomic word, so hot producers never
// serialize on a mutex, and because there is exactly one cell the
// accumulation order — hence the float64 rounding — is identical to the
// sequential sum a mutex-guarded total produces. (A striped counter
// would be faster under heavy contention but sums its stripes in stripe
// order, not add order, which perturbs low-order float bits and breaks
// the simulator's bit-identical replay guarantee.)
type Counter struct {
	bits atomic.Uint64
}

// Add accrues a non-negative amount; negative and NaN amounts are
// ignored.
func (c *Counter) Add(v float64) {
	if v < 0 || v != v {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Total returns the accumulated value.
func (c *Counter) Total() float64 {
	return math.Float64frombits(c.bits.Load())
}
