// Package telemetry provides the lightweight measurement plumbing the
// simulated cluster exports: append-only time series with time-weighted
// aggregation and monotonic counters. Private datacenters collect exactly
// this kind of per-application performance and power telemetry at fine
// granularity (the paper cites Dynamo and WSMeter); the experiments harness
// reads these series to regenerate the paper's figures.
package telemetry

import (
	"errors"
	"sync"
	"time"
)

// Point is one time-series observation.
type Point struct {
	Time  time.Time
	Value float64
}

// Series is an append-only time series. It is safe for concurrent use.
type Series struct {
	name string

	mu  sync.Mutex
	pts []Point
}

// NewSeries creates a named series.
func NewSeries(name string) *Series {
	return &Series{name: name}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append adds an observation. Timestamps should be non-decreasing; callers
// appending out of order get an error and the point is dropped.
func (s *Series) Append(t time.Time, v float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.pts); n > 0 && t.Before(s.pts[n-1].Time) {
		return errors.New("telemetry: out-of-order append")
	}
	s.pts = append(s.pts, Point{Time: t, Value: v})
	return nil
}

// Len returns the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Points returns a copy of all observations.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.pts...)
}

// Values returns a copy of the observation values only.
func (s *Series) Values() []float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]float64, len(s.pts))
	for i, p := range s.pts {
		out[i] = p.Value
	}
	return out
}

// TimeWeightedMean returns the mean of the series weighting each value by
// the time it held (piecewise-constant, left-continuous). A series with
// fewer than two points returns the plain mean of what it has.
func (s *Series) TimeWeightedMean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pts)
	switch n {
	case 0:
		return 0
	case 1:
		return s.pts[0].Value
	}
	var weighted, total float64
	for i := 0; i < n-1; i++ {
		dt := s.pts[i+1].Time.Sub(s.pts[i].Time).Seconds()
		if dt <= 0 {
			continue
		}
		weighted += s.pts[i].Value * dt
		total += dt
	}
	if total == 0 {
		// All points share one timestamp; fall back to the plain mean.
		sum := 0.0
		for _, p := range s.pts {
			sum += p.Value
		}
		return sum / float64(n)
	}
	return weighted / total
}

// Max returns the largest value, or 0 for an empty series.
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := 0.0
	for i, p := range s.pts {
		if i == 0 || p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Counter is a monotonically increasing accumulator (e.g. completed
// best-effort operations). It is safe for concurrent use.
type Counter struct {
	mu    sync.Mutex
	total float64
}

// Add accrues a non-negative amount; negative amounts are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.mu.Lock()
	c.total += v
	c.mu.Unlock()
}

// Total returns the accumulated value.
func (c *Counter) Total() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
