package profiler

import (
	"math"
	"testing"

	"pocolo/internal/machine"
	"pocolo/internal/workload"
)

func TestRunValidation(t *testing.T) {
	cat := workload.MustDefaults()
	spec, _ := cat.ByName("xapian")
	cfg := machine.XeonE52650()
	if _, err := Run(Config{Machine: cfg}); err == nil {
		t.Error("expected error for nil spec")
	}
	if _, err := Run(Config{Spec: spec}); err == nil {
		t.Error("expected error for invalid machine")
	}
	if _, err := Run(Config{Spec: spec, Machine: cfg, CoreStep: -1}); err == nil {
		t.Error("expected error for negative stride")
	}
	if _, err := Run(Config{Spec: spec, Machine: cfg, Slack: 0.9}); err == nil {
		t.Error("expected error for absurd slack")
	}
}

func TestRunSweepsFullGrid(t *testing.T) {
	cat := workload.MustDefaults()
	spec, _ := cat.ByName("lstm")
	cfg := machine.XeonE52650()
	p, err := Run(Config{Spec: spec, Machine: cfg, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Swept != cfg.Cores*cfg.LLCWays {
		t.Errorf("Swept = %d, want %d", p.Swept, cfg.Cores*cfg.LLCWays)
	}
	// BE apps keep essentially every sample.
	if p.Kept < p.Swept*9/10 {
		t.Errorf("Kept = %d of %d", p.Kept, p.Swept)
	}
	if p.App != "lstm" || len(p.Resources) != 2 {
		t.Errorf("profile header: %+v", p)
	}
}

func TestRunStride(t *testing.T) {
	cat := workload.MustDefaults()
	spec, _ := cat.ByName("rnn")
	cfg := machine.XeonE52650()
	p, err := Run(Config{Spec: spec, Machine: cfg, CoreStep: 2, WayStep: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 6 * 5 // cores 1,3,5,7,9,11; ways 1,5,9,13,17
	if p.Swept != want {
		t.Errorf("Swept = %d, want %d", p.Swept, want)
	}
}

func TestFittedModelsMatchGroundTruth(t *testing.T) {
	cat := workload.MustDefaults()
	cfg := machine.XeonE52650()
	for _, name := range []string{"xapian", "sphinx", "lstm", "graph"} {
		spec, _ := cat.ByName(name)
		m, err := ProfileAndFit(Config{Spec: spec, Machine: cfg, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Fig. 8: R² between 0.8 and 1 for both fits.
		if m.PerfR2 < 0.8 || m.PerfR2 > 1 {
			t.Errorf("%s: perf R² = %v outside the paper's band", name, m.PerfR2)
		}
		if m.PowerR2 < 0.8 || m.PowerR2 > 1 {
			t.Errorf("%s: power R² = %v outside the paper's band", name, m.PowerR2)
		}
		// The fitted indirect preference must land near the ground truth
		// (which was calibrated to the paper's published vectors).
		wantC, _ := spec.PreferenceTruth()
		pref := m.Preference()
		if math.Abs(pref[0]-wantC) > 0.08 {
			t.Errorf("%s: fitted cores preference %v, ground truth %v", name, pref[0], wantC)
		}
		// The fitted direct preference similarly tracks the exponents.
		wantDirect, _ := spec.DirectPreferenceTruth()
		direct := m.DirectPreference()
		if math.Abs(direct[0]-wantDirect) > 0.08 {
			t.Errorf("%s: fitted direct preference %v, ground truth %v", name, direct[0], wantDirect)
		}
	}
}

func TestLCSlackFilterDropsInfeasiblePoints(t *testing.T) {
	// With a severe slack demand, tiny allocations cannot ever achieve it
	// — those grid points must be dropped, not recorded with zero perf.
	cat := workload.MustDefaults()
	spec, _ := cat.ByName("xapian")
	cfg := machine.XeonE52650()
	strict, err := Run(Config{Spec: spec, Machine: cfg, Slack: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(Config{Spec: spec, Machine: cfg, Slack: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Stricter slack keeps fewer or equal samples and both keep
	// *something*.
	if strict.Kept > loose.Kept {
		t.Errorf("strict slack kept more samples (%d) than loose (%d)", strict.Kept, loose.Kept)
	}
	// Strict-slack performance numbers are lower at the same allocation.
	if strict.Samples[0].Perf >= loose.Samples[0].Perf {
		t.Error("stricter slack should measure lower max load")
	}
}

func TestRunDeterminism(t *testing.T) {
	cat := workload.MustDefaults()
	spec, _ := cat.ByName("pbzip")
	cfg := machine.XeonE52650()
	a, err := Run(Config{Spec: spec, Machine: cfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Spec: spec, Machine: cfg, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("different sample counts")
	}
	for i := range a.Samples {
		if a.Samples[i].Perf != b.Samples[i].Perf || a.Samples[i].Power != b.Samples[i].Power {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestFitAll(t *testing.T) {
	cat := workload.MustDefaults()
	cfg := machine.XeonE52650()
	all := append(cat.LC(), cat.BE()...)
	models, err := FitAll(cfg, all, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 8 {
		t.Fatalf("got %d models", len(models))
	}
	for name, m := range models {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Preference ordering from the paper: graph is the most core-loving,
	// lstm the most cache-loving.
	if models["graph"].Preference()[0] <= models["lstm"].Preference()[0] {
		t.Error("graph should prefer cores more than lstm")
	}
	if models["sphinx"].Preference()[0] >= models["img-dnn"].Preference()[0] {
		t.Error("sphinx should prefer cores less than img-dnn")
	}
}
