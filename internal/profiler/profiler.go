// Package profiler sweeps an application across the server's allocation
// grid and collects (allocation, performance, power) samples for utility
// model fitting — the paper's Section IV-A profiling step.
//
// For latency-critical applications the performance metric is the maximum
// achievable load within the target latency, and only samples taken with at
// least the configured tail-latency slack are kept ("as an initial guard
// against model inaccuracies, we use samples where the tail latency of the
// primary application has at least 10% slack with respect to its SLO").
// For best-effort applications the metric is saturated throughput.
// Measurement noise models the telemetry path (application counters and
// the per-application power meter).
package profiler

import (
	"errors"
	"fmt"
	"math/rand"

	"pocolo/internal/machine"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// ResourceNames are the direct resources the prototype profiles and
// manages (Section IV: CPU cores and LLC cache ways).
var ResourceNames = []string{"cores", "llc-ways"}

// Config parameterizes one profiling sweep.
type Config struct {
	// Spec is the application to profile; required.
	Spec *workload.Spec
	// Machine is the platform to profile on; required.
	Machine machine.Config
	// CoreStep and WayStep set the grid stride (default 1: every
	// allocation). Coarser strides model cheaper profiling.
	CoreStep int
	WayStep  int
	// Slack is the minimum relative p99 slack an LC sample must have to be
	// kept (default 0.10). Ignored for BE apps.
	Slack float64
	// PerfNoise and PowerNoise are relative measurement noise levels
	// (defaults 4% and 2%).
	PerfNoise  float64
	PowerNoise float64
	// Seed makes the sweep reproducible.
	Seed int64
}

// Profile is the result of a sweep.
type Profile struct {
	App       string
	Resources []string
	Samples   []utility.Sample
	// Kept and Swept count the samples retained vs grid points visited
	// (LC samples failing the slack guard are dropped).
	Kept  int
	Swept int
}

// Run executes the profiling sweep.
func Run(cfg Config) (*Profile, error) {
	if cfg.Spec == nil {
		return nil, errors.New("profiler: nil spec")
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	coreStep := cfg.CoreStep
	if coreStep == 0 {
		coreStep = 1
	}
	wayStep := cfg.WayStep
	if wayStep == 0 {
		wayStep = 1
	}
	if coreStep < 1 || wayStep < 1 {
		return nil, fmt.Errorf("profiler: invalid grid strides %d/%d", coreStep, wayStep)
	}
	slack := cfg.Slack
	if slack == 0 {
		slack = 0.10
	}
	if slack < 0 || slack >= 0.7 {
		return nil, fmt.Errorf("profiler: slack %v outside [0, 0.7)", slack)
	}
	perfNoise := cfg.PerfNoise
	if perfNoise == 0 {
		perfNoise = 0.04
	}
	powerNoise := cfg.PowerNoise
	if powerNoise == 0 {
		powerNoise = 0.02
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Profile{App: cfg.Spec.Name, Resources: append([]string(nil), ResourceNames...)}
	for c := 1; c <= cfg.Machine.Cores; c += coreStep {
		for w := 1; w <= cfg.Machine.LLCWays; w += wayStep {
			p.Swept++
			alloc := machine.Alloc{Cores: c, Ways: w, FreqGHz: cfg.Machine.MaxFreqGHz, Duty: 1}
			var perf, powerW float64
			switch cfg.Spec.Class {
			case workload.LatencyCritical:
				// Load the app to the highest level that preserves the
				// slack guard, and measure there.
				load := cfg.Spec.MaxLoadWithSlack(alloc, slack)
				if load <= 0 {
					continue
				}
				perf = load
				powerW = cfg.Spec.Power(alloc, load)
			case workload.BestEffort:
				perf = cfg.Spec.Throughput(alloc)
				powerW = cfg.Spec.Power(alloc, 0)
			default:
				return nil, fmt.Errorf("profiler: unknown class %v", cfg.Spec.Class)
			}
			perf *= 1 + rng.NormFloat64()*perfNoise
			powerW *= 1 + rng.NormFloat64()*powerNoise
			if perf <= 0 || powerW < 0 {
				continue
			}
			p.Samples = append(p.Samples, utility.Sample{
				Alloc: []float64{float64(c), float64(w)},
				Perf:  perf,
				Power: powerW,
			})
			p.Kept++
		}
	}
	if len(p.Samples) == 0 {
		return nil, fmt.Errorf("profiler: sweep for %s produced no usable samples", cfg.Spec.Name)
	}
	return p, nil
}

// Fit fits the Cobb-Douglas indirect utility model to the profile.
func (p *Profile) Fit() (*utility.Model, error) {
	return utility.Fit(p.App, p.Resources, p.Samples)
}

// ProfileAndFit runs the sweep and fits the model in one step, validating
// the fitted parameters.
func ProfileAndFit(cfg Config) (*utility.Model, error) {
	p, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	m, err := p.Fit()
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// FitAll profiles and fits every application in the list on the same
// platform, returning models keyed by application name. Per-app seeds are
// derived from the base seed.
func FitAll(cfgMachine machine.Config, specs []*workload.Spec, seed int64) (map[string]*utility.Model, error) {
	models := make(map[string]*utility.Model, len(specs))
	for i, s := range specs {
		m, err := ProfileAndFit(Config{
			Spec:    s,
			Machine: cfgMachine,
			Seed:    seed + int64(i)*101,
		})
		if err != nil {
			return nil, fmt.Errorf("profiler: %s: %w", s.Name, err)
		}
		models[s.Name] = m
	}
	return models, nil
}
