package des

import (
	"math"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/workload"
)

func TestRunValidation(t *testing.T) {
	valid := Config{ArrivalRate: 10, Servers: 1, ServiceRate: 20, Duration: time.Second}
	mutations := []func(*Config){
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.Servers = 0 },
		func(c *Config) { c.ServiceRate = 0 },
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.WarmupFrac = 1.5 },
		func(c *Config) { c.WarmupFrac = -0.1 },
	}
	for i, m := range mutations {
		c := valid
		m(&c)
		if _, err := Run(c); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	if _, err := Run(valid); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestMM1MeanSojourn(t *testing.T) {
	// M/M/1 with λ=50/s, μ=100/s: mean sojourn = 1/(μ−λ) = 20 ms.
	res, err := Run(Config{
		ArrivalRate: 50,
		Servers:     1,
		ServiceRate: 100,
		Duration:    20 * time.Minute,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 50000 {
		t.Fatalf("only %d completions", res.Completed)
	}
	mean := res.Hist.Mean()
	if math.Abs(mean-20)/20 > 0.1 {
		t.Errorf("mean sojourn = %.2f ms, want ≈20 ms", mean)
	}
	// M/M/1 sojourn is exponential: p99 = ln(100)·mean ≈ 92.1 ms.
	p99 := res.Hist.Percentile(99)
	want := math.Log(100) * 20
	if math.Abs(p99-want)/want > 0.15 {
		t.Errorf("p99 = %.2f ms, want ≈%.1f ms", p99, want)
	}
	if res.Utilization != 0.5 {
		t.Errorf("Utilization = %v", res.Utilization)
	}
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	// Tail latency must increase monotonically in offered load and explode
	// near saturation — the property the fluid model's latency law encodes.
	rhos := []float64{0.3, 0.6, 0.85, 0.95}
	p99s := make([]float64, len(rhos))
	for i, rho := range rhos {
		res, err := Run(Config{
			ArrivalRate: rho * 200,
			Servers:     4,
			ServiceRate: 200,
			Duration:    10 * time.Minute,
			Seed:        42,
		})
		if err != nil {
			t.Fatal(err)
		}
		p99s[i] = res.Hist.Percentile(99)
		if i > 0 && p99s[i] <= p99s[i-1] {
			t.Errorf("ρ=%.2f: p99 %.2f not greater than %.2f at the previous load", rho, p99s[i], p99s[i-1])
		}
	}
	// Near saturation the tail must blow up: at least 2× from ρ=0.85 to
	// ρ=0.95.
	if p99s[3] < 2*p99s[2] {
		t.Errorf("ρ=0.95: p99 %.2f did not explode (ρ=0.85 gave %.2f)", p99s[3], p99s[2])
	}
}

func TestMultiServerBeatsSingleServerAtTail(t *testing.T) {
	// At equal aggregate capacity and load, k servers give lower waiting
	// than 1 fast server ONLY in utilization of queueing; actually M/M/1
	// with a fast server has lower sojourn. Verify the simulator reproduces
	// that classic result (service time dominates at k>1).
	one, err := Run(Config{ArrivalRate: 80, Servers: 1, ServiceRate: 100, Duration: 10 * time.Minute, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(Config{ArrivalRate: 80, Servers: 4, ServiceRate: 100, Duration: 10 * time.Minute, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if one.Hist.Mean() >= four.Hist.Mean() {
		t.Errorf("M/M/1 mean %.2f should beat M/M/4 mean %.2f at equal aggregate rate", one.Hist.Mean(), four.Hist.Mean())
	}
}

func TestFromAlloc(t *testing.T) {
	cat := workload.MustDefaults()
	spec, err := cat.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	a := machine.Alloc{Cores: 4, Ways: 8, FreqGHz: 2.2, Duty: 1}
	cfg := FromAlloc(spec, a, 1000, time.Minute, 9)
	if cfg.Servers != 4 {
		t.Errorf("Servers = %d", cfg.Servers)
	}
	if math.Abs(cfg.ServiceRate-spec.Capacity(a)) > 1e-9 {
		t.Errorf("ServiceRate = %v", cfg.ServiceRate)
	}
	if cfg.ArrivalRate != 1000 {
		t.Errorf("ArrivalRate = %v", cfg.ArrivalRate)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Error("no completions")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{ArrivalRate: 100, Servers: 2, ServiceRate: 150, Duration: time.Minute, Seed: 5}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Completed != b.Completed || a.Hist.Percentile(99) != b.Hist.Percentile(99) {
		t.Error("same seed produced different results")
	}
}

func TestServiceDistributions(t *testing.T) {
	base := Config{ArrivalRate: 100, Servers: 4, ServiceRate: 200, Duration: 5 * time.Minute, Seed: 3}
	p99 := map[ServiceDist]float64{}
	means := map[ServiceDist]float64{}
	for _, dist := range []ServiceDist{Deterministic, Exponential, LogNormal} {
		cfg := base
		cfg.Service = dist
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", dist, err)
		}
		p99[dist] = res.Hist.Percentile(99)
		means[dist] = res.Hist.Mean()
	}
	// Same mean service time: means stay within a moderate band...
	if means[Deterministic] > means[LogNormal] {
		t.Errorf("deterministic mean %v should not exceed lognormal %v", means[Deterministic], means[LogNormal])
	}
	// ...but the tails order strictly by service-time variability
	// (Pollaczek–Khinchine: waiting grows with cv²).
	if !(p99[Deterministic] < p99[Exponential] && p99[Exponential] < p99[LogNormal]) {
		t.Errorf("p99 ordering broken: D=%v M=%v LN=%v", p99[Deterministic], p99[Exponential], p99[LogNormal])
	}
	if Deterministic.String() != "deterministic" || LogNormal.String() != "lognormal" ||
		Exponential.String() != "exponential" || ServiceDist(9).String() == "" {
		t.Error("ServiceDist strings broken")
	}
	bad := base
	bad.Service = ServiceDist(9)
	if _, err := Run(bad); err == nil {
		t.Error("expected error for unknown distribution")
	}
}
