// Package des is a request-level discrete-event simulator: Poisson
// arrivals into a FIFO queue served by k parallel servers with
// configurable service-time distributions (exponential, deterministic, or
// lognormal — M/M/k, M/D/k, M/G/k). It exists to validate the fluid
// latency law used by internal/sim — the analytic p99 curve must behave
// like a real queue (monotone in load, explosive near saturation, tail far
// above the mean) — and powers the examples that want per-request
// latencies rather than analytic ones.
package des

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pocolo/internal/latency"
	"pocolo/internal/machine"
	"pocolo/internal/workload"
)

// ServiceDist selects the service-time distribution of an M/G/k run.
type ServiceDist int

const (
	// Exponential service times (M/M/k), coefficient of variation 1.
	Exponential ServiceDist = iota
	// Deterministic service times (M/D/k), coefficient of variation 0 —
	// the lightest possible tail for a given mean.
	Deterministic
	// LogNormal service times with coefficient of variation 2 — the
	// heavy-ish tails realistic request mixes show.
	LogNormal
)

// String implements fmt.Stringer.
func (d ServiceDist) String() string {
	switch d {
	case Exponential:
		return "exponential"
	case Deterministic:
		return "deterministic"
	case LogNormal:
		return "lognormal"
	default:
		return fmt.Sprintf("ServiceDist(%d)", int(d))
	}
}

// Config parameterizes one queueing run.
type Config struct {
	// ArrivalRate is the Poisson arrival rate in requests/s.
	ArrivalRate float64
	// Servers is the number of parallel servers (cores).
	Servers int
	// ServiceRate is the aggregate service capacity in requests/s; each of
	// the k servers completes work at ServiceRate/k.
	ServiceRate float64
	// Service selects the service-time distribution (default Exponential).
	Service ServiceDist
	// Duration is the simulated time span.
	Duration time.Duration
	// WarmupFrac discards latencies observed during the first fraction of
	// the run (default 0.1) so the measured tail reflects steady state.
	WarmupFrac float64
	// Seed makes the run reproducible.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	Completed uint64
	Dropped   uint64 // arrivals after the horizon cut-off (not simulated)
	Hist      *latency.Histogram
	// Utilization is the offered load ρ = ArrivalRate/ServiceRate.
	Utilization float64
}

// FromAlloc derives a queueing configuration from a workload model: the
// allocation's capacity becomes the aggregate service rate and its cores
// become the parallel servers.
func FromAlloc(spec *workload.Spec, a machine.Alloc, load float64, d time.Duration, seed int64) Config {
	return Config{
		ArrivalRate: load,
		Servers:     a.Cores,
		ServiceRate: spec.Capacity(a),
		Duration:    d,
		Seed:        seed,
	}
}

type eventKind int

const (
	evArrival eventKind = iota
	evDeparture
)

type event struct {
	at   float64 // seconds since start
	kind eventKind
	// arrivedAt is the arrival time of the request departing (departures
	// only).
	arrivedAt float64
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run executes the queueing simulation.
func Run(cfg Config) (Result, error) {
	if cfg.ArrivalRate <= 0 {
		return Result{}, errors.New("des: arrival rate must be positive")
	}
	if cfg.Servers < 1 {
		return Result{}, errors.New("des: need at least one server")
	}
	if cfg.ServiceRate <= 0 {
		return Result{}, errors.New("des: service rate must be positive")
	}
	if cfg.Duration <= 0 {
		return Result{}, errors.New("des: duration must be positive")
	}
	warmup := cfg.WarmupFrac
	if warmup == 0 {
		warmup = 0.1
	}
	if warmup < 0 || warmup >= 1 {
		return Result{}, errors.New("des: warmup fraction outside [0, 1)")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.Duration.Seconds()
	warmupEnd := horizon * warmup
	perServerRate := cfg.ServiceRate / float64(cfg.Servers)
	meanSvc := 1 / perServerRate

	// service draws one service time per the configured distribution, all
	// sharing the same mean so utilization comparisons stay apples-to-apples.
	var service func() float64
	switch cfg.Service {
	case Deterministic:
		service = func() float64 { return meanSvc }
	case LogNormal:
		// Parameterize for a coefficient of variation of 2:
		// cv² = e^(σ²) − 1 → σ² = ln(5); mean = e^(μ+σ²/2).
		sigma2 := math.Log(5.0)
		mu := math.Log(meanSvc) - sigma2/2
		sigma := math.Sqrt(sigma2)
		service = func() float64 { return math.Exp(mu + sigma*rng.NormFloat64()) }
	case Exponential:
		service = func() float64 { return rng.ExpFloat64() * meanSvc }
	default:
		return Result{}, fmt.Errorf("des: unknown service distribution %v", cfg.Service)
	}

	hist, err := latency.NewHistogram(0.001, 1e7, 0.01)
	if err != nil {
		return Result{}, err
	}

	var h eventHeap
	heap.Init(&h)
	heap.Push(&h, event{at: rng.ExpFloat64() / cfg.ArrivalRate, kind: evArrival})

	busy := 0
	var queue []float64 // arrival times of queued requests
	res := Result{Hist: hist, Utilization: cfg.ArrivalRate / cfg.ServiceRate}

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.at > horizon {
			if ev.kind == evArrival {
				res.Dropped++
			}
			continue
		}
		switch ev.kind {
		case evArrival:
			// Schedule the next arrival.
			heap.Push(&h, event{at: ev.at + rng.ExpFloat64()/cfg.ArrivalRate, kind: evArrival})
			if busy < cfg.Servers {
				busy++
				heap.Push(&h, event{at: ev.at + service(), kind: evDeparture, arrivedAt: ev.at})
			} else {
				queue = append(queue, ev.at)
			}
		case evDeparture:
			res.Completed++
			if ev.at >= warmupEnd {
				sojournMs := (ev.at - ev.arrivedAt) * 1000
				if err := hist.Record(sojournMs); err != nil {
					return Result{}, err
				}
			}
			if len(queue) > 0 {
				arrived := queue[0]
				queue = queue[1:]
				heap.Push(&h, event{at: ev.at + service(), kind: evDeparture, arrivedAt: arrived})
			} else {
				busy--
			}
		}
	}
	return res, nil
}
