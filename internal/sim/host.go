// Package sim provides the cluster simulation runtime. Each Host binds a
// simulated machine (internal/machine) to one latency-critical tenant, an
// optional best-effort tenant, a load trace, and a power meter; an Engine
// advances a set of hosts through simulated time in fixed ticks and fires
// periodic controller tasks (the 1 s server manager and the 100 ms power
// capper from Section IV-C run as such tasks).
//
// The fluid model used here computes tail latency, throughput, and power
// analytically from the ground-truth workload models each tick. The
// request-level discrete-event engine in internal/sim/des validates that
// the fluid latency law behaves like a real queue.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/power"
	"pocolo/internal/telemetry"
	"pocolo/internal/workload"
)

// HostConfig assembles one simulated server.
type HostConfig struct {
	Name    string
	Machine machine.Config
	// LC is the primary latency-critical application; required.
	LC *workload.Spec
	// Trace drives the LC application's offered load; required.
	Trace workload.Trace
	// BE is the co-located best-effort application; may be nil for a
	// dedicated server.
	BE *workload.Spec
	// ExtraBE holds additional best-effort tenants beyond BE, for the
	// multi-co-runner extensions (time-sharing and spatial sharing,
	// Section V-G). They start with no resources.
	ExtraBE []*workload.Spec
	// CapW is the provisioned power capacity; defaults to the LC app's
	// ProvisionedPowerW when zero.
	CapW float64
	// MeterPeriod is the power-meter sampling period (default 100 ms, the
	// paper's setting).
	MeterPeriod time.Duration
	// MeterNoise is the relative power measurement noise (default 1%).
	MeterNoise float64
	// LatencyNoise is the relative tail-latency observation noise
	// (default 3%): real p99 measurements over one-second windows jitter.
	LatencyNoise float64
	// Seed makes the host's noise streams reproducible.
	Seed int64
	// SeriesCap bounds each telemetry series to the most recent SeriesCap
	// points (ring buffer). Zero keeps the series unbounded — the
	// experiments harness reads whole timelines back; long-running
	// control-plane agents set a cap so memory stays flat.
	SeriesCap int
	// SeriesHint preallocates each unbounded telemetry series for the
	// expected number of points (one per engine tick), so a fixed-length
	// run's hot path appends without reallocating. Ignored when SeriesCap
	// bounds the series.
	SeriesHint int
}

// Host is one simulated server in the cluster.
type Host struct {
	name   string
	cfg    machine.Config
	server *machine.Server
	lc     *workload.Spec
	bes    []*workload.Spec
	trace  workload.Trace
	capW   float64

	meter    *power.Meter
	energy   power.EnergyCounter
	capTrack *power.CapTracker
	latNoise float64
	rng      *rand.Rand

	// Live state updated each tick.
	elapsed      time.Duration
	curLoad      float64 // offered LC load, requests/s
	curGoodput   float64 // LC load actually served within capacity
	curP95       float64 // observed (noisy) p95, ms
	curP99       float64 // observed (noisy) p99, ms
	curPower     float64 // true instantaneous server power, W
	curBEThr     float64 // instantaneous BE throughput, ops/s
	sloViolDur   time.Duration
	totalDur     time.Duration
	beOps        telemetry.Counter
	beOpsBy      map[string]*telemetry.Counter
	lcOps        telemetry.Counter
	powerSeries  *telemetry.Series
	p95Series    *telemetry.Series
	p99Series    *telemetry.Series
	loadSeries   *telemetry.Series
	beThrSeries  *telemetry.Series
	slackSeries  *telemetry.Series
	lastReading  power.Reading
	beFullPowerW float64 // BE power if duty/freq were unthrottled (diagnostic)
}

// NewHost validates the configuration and builds the host with the LC
// tenant (and BE tenant, if any) registered on the machine. The LC tenant
// starts with the full machine; the BE tenant starts with nothing.
func NewHost(hc HostConfig) (*Host, error) {
	if hc.Name == "" {
		return nil, errors.New("sim: host needs a name")
	}
	if hc.LC == nil || hc.LC.Class != workload.LatencyCritical {
		return nil, fmt.Errorf("sim: host %q needs a latency-critical primary", hc.Name)
	}
	var bes []*workload.Spec
	if hc.BE != nil {
		bes = append(bes, hc.BE)
	}
	bes = append(bes, hc.ExtraBE...)
	seen := map[string]bool{hc.LC.Name: true}
	for _, be := range bes {
		if be == nil {
			return nil, fmt.Errorf("sim: host %q: nil co-runner", hc.Name)
		}
		if be.Class != workload.BestEffort {
			return nil, fmt.Errorf("sim: host %q: co-runner %q is not best-effort", hc.Name, be.Name)
		}
		if seen[be.Name] {
			return nil, fmt.Errorf("sim: host %q: duplicate tenant %q", hc.Name, be.Name)
		}
		seen[be.Name] = true
	}
	if hc.Trace == nil {
		return nil, fmt.Errorf("sim: host %q needs a load trace", hc.Name)
	}
	srv, err := machine.NewServer(hc.Machine)
	if err != nil {
		return nil, err
	}
	if err := srv.AddTenant(hc.LC.Name); err != nil {
		return nil, err
	}
	if err := srv.SetAlloc(hc.LC.Name, hc.Machine.Full()); err != nil {
		return nil, err
	}
	for _, be := range bes {
		if err := srv.AddTenant(be.Name); err != nil {
			return nil, err
		}
	}
	capW := hc.CapW
	if capW == 0 {
		capW = hc.LC.ProvisionedPowerW
	}
	if capW <= hc.Machine.IdlePowerW {
		return nil, fmt.Errorf("sim: host %q: power cap %v W does not clear the idle floor", hc.Name, capW)
	}
	capTrack, err := power.NewCapTracker(capW)
	if err != nil {
		return nil, err
	}
	meterPeriod := hc.MeterPeriod
	if meterPeriod == 0 {
		meterPeriod = 100 * time.Millisecond
	}
	meterNoise := hc.MeterNoise
	if meterNoise == 0 {
		meterNoise = 0.01
	}
	latNoise := hc.LatencyNoise
	if latNoise == 0 {
		latNoise = 0.03
	}
	newSeries := func(suffix string) *telemetry.Series {
		s := telemetry.NewBoundedSeries(hc.Name+suffix, hc.SeriesCap)
		if hc.SeriesHint > 0 {
			s.Reserve(hc.SeriesHint)
		}
		return s
	}
	h := &Host{
		name:        hc.Name,
		cfg:         hc.Machine,
		server:      srv,
		lc:          hc.LC,
		bes:         bes,
		trace:       hc.Trace,
		capW:        capW,
		capTrack:    capTrack,
		latNoise:    latNoise,
		rng:         rand.New(rand.NewSource(hc.Seed)),
		powerSeries: newSeries("/power"),
		p95Series:   newSeries("/p95"),
		p99Series:   newSeries("/p99"),
		loadSeries:  newSeries("/load"),
		beThrSeries: newSeries("/be-throughput"),
		slackSeries: newSeries("/slack"),
		beOpsBy:     make(map[string]*telemetry.Counter, len(bes)),
	}
	for _, be := range bes {
		h.beOpsBy[be.Name] = &telemetry.Counter{}
	}
	h.meter, err = power.NewMeter(h.truePower, meterPeriod, meterNoise, hc.Seed+1)
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Machine returns the machine configuration.
func (h *Host) Machine() machine.Config { return h.cfg }

// Server exposes the allocation knobs, exactly like the prototype's root
// access to taskset/CAT/cpupower.
func (h *Host) Server() *machine.Server { return h.server }

// LC returns the primary application's spec.
func (h *Host) LC() *workload.Spec { return h.lc }

// BE returns the first co-located best-effort spec, or nil.
func (h *Host) BE() *workload.Spec {
	if len(h.bes) == 0 {
		return nil
	}
	return h.bes[0]
}

// BEs returns all co-located best-effort specs in registration order.
func (h *Host) BEs() []*workload.Spec { return append([]*workload.Spec(nil), h.bes...) }

// CapW returns the provisioned power capacity.
func (h *Host) CapW() float64 { return h.capW }

// OfferedLoad returns the LC application's current offered load in
// requests/s.
func (h *Host) OfferedLoad() float64 { return h.curLoad }

// ObservedP95 returns the latest (noisy) p95 latency observation in ms.
func (h *Host) ObservedP95() float64 { return h.curP95 }

// ObservedP99 returns the latest (noisy) p99 latency observation in ms.
func (h *Host) ObservedP99() float64 { return h.curP99 }

// Slack returns the relative p99 latency slack: (SLO − p99)/SLO. Negative
// slack means the SLO is being violated.
func (h *Host) Slack() float64 {
	return (h.lc.SLO.P99Ms - h.curP99) / h.lc.SLO.P99Ms
}

// MeterReading returns the latest power-meter sample.
func (h *Host) MeterReading() power.Reading { return h.lastReading }

// TruePowerW returns the instantaneous ground-truth server power in watts,
// bypassing meter noise and the meter's sampling period. The invariant
// harness checks physics against truth; controllers must keep using the
// noisy meter.
func (h *Host) TruePowerW() float64 { return h.truePower() }

// AppPowerW returns a per-application power measurement in watts (the
// application's dynamic draw, excluding the idle floor), with the same
// relative noise as the server meter. The paper's prototype gets this
// signal from an application-level power meter (power containers) that
// apportions the socket draw; the simulator reads it from ground truth
// plus measurement noise.
func (h *Host) AppPowerW(name string) (float64, error) {
	a, err := h.server.Alloc(name)
	if err != nil {
		return 0, err
	}
	var truth float64
	switch {
	case name == h.lc.Name:
		truth = h.lc.Power(a, h.curLoad)
	default:
		for _, be := range h.bes {
			if be.Name == name {
				truth = be.Power(a, 0)
				break
			}
		}
	}
	noisy := truth * (1 + h.rng.NormFloat64()*0.02)
	if noisy < 0 {
		noisy = 0
	}
	return noisy, nil
}

// truePower computes the instantaneous ground-truth server power.
func (h *Host) truePower() float64 {
	p := h.cfg.IdlePowerW
	if a, err := h.server.Alloc(h.lc.Name); err == nil {
		p += h.lc.Power(a, h.curLoad)
	}
	for _, be := range h.bes {
		if a, err := h.server.Alloc(be.Name); err == nil {
			p += be.Power(a, 0)
		}
	}
	return p
}

// step advances the host's workload state by dt ending at now; start is
// the simulation origin used to index the trace.
func (h *Host) step(start, now time.Time, dt time.Duration) {
	h.elapsed = now.Sub(start)
	// Sanitize the trace output: traces are user-provided, and a buggy one
	// must not corrupt the power/energy accounting.
	frac := h.trace.LoadFraction(h.elapsed)
	switch {
	case math.IsNaN(frac) || frac < 0:
		frac = 0
	case frac > 1:
		frac = 1
	}
	h.curLoad = frac * h.lc.PeakLoad

	lcAlloc, err := h.server.Alloc(h.lc.Name)
	if err != nil {
		lcAlloc = machine.Alloc{}
	}
	h.curP95 = h.observe(h.lc.P95(lcAlloc, h.curLoad), h.lc.SLO.P95Ms)
	h.curP99 = h.observe(h.lc.P99(lcAlloc, h.curLoad), h.lc.SLO.P99Ms)

	// Goodput: the queue serves at most its SLO-compliant capacity.
	maxLoad := h.lc.MaxLoadSLO(lcAlloc)
	h.curGoodput = h.curLoad
	if h.curGoodput > maxLoad {
		h.curGoodput = maxLoad
	}
	h.lcOps.Add(h.curGoodput * dt.Seconds())

	// BE throughput on whatever each co-runner currently holds.
	h.curBEThr = 0
	h.beFullPowerW = 0
	for _, be := range h.bes {
		a, err := h.server.Alloc(be.Name)
		if err != nil {
			continue
		}
		thr := be.Throughput(a)
		h.curBEThr += thr
		h.beOpsBy[be.Name].Add(thr * dt.Seconds())
		unthrottled := a
		unthrottled.Duty = 1
		unthrottled.FreqGHz = h.cfg.MaxFreqGHz
		h.beFullPowerW += be.Power(unthrottled, 0)
	}
	h.beOps.Add(h.curBEThr * dt.Seconds())

	// Power accounting from ground truth; the meter adds sampling noise on
	// top for whoever reads it.
	h.curPower = h.truePower()
	h.lastReading = h.meter.Sample(now)
	h.energy.Observe(now, h.curPower)
	h.capTrack.Observe(now, h.curPower)

	h.totalDur += dt
	if h.curP99 > h.lc.SLO.P99Ms {
		h.sloViolDur += dt
	}

	// Telemetry.
	_ = h.powerSeries.Append(now, h.curPower)
	_ = h.p95Series.Append(now, h.curP95)
	_ = h.p99Series.Append(now, h.curP99)
	_ = h.loadSeries.Append(now, h.curLoad)
	_ = h.beThrSeries.Append(now, h.curBEThr)
	_ = h.slackSeries.Append(now, h.Slack())
}

// observe adds measurement noise to a ground-truth tail latency. Saturated
// measurements report a latency far beyond the SLO rather than +Inf so
// controllers see a huge-but-finite signal, as a timeout-bounded
// measurement would. (A method, not a per-step closure: step is the
// simulation's hot path and must not allocate.)
func (h *Host) observe(truth, slo float64) float64 {
	if isInf(truth) {
		return slo * 10
	}
	v := truth * (1 + h.rng.NormFloat64()*h.latNoise)
	if v < 0 {
		return 0
	}
	return v
}

func isInf(f float64) bool { return f > 1e308 || f < -1e308 }

// Metrics summarizes a finished run on one host.
type Metrics struct {
	Host            string
	DurationSec     float64
	BEOps           float64 // total best-effort operations completed
	BEOpsBy         map[string]float64
	BEMeanThr       float64 // mean BE throughput, ops/s
	LCOps           float64 // total LC requests served
	MeanPowerW      float64
	PeakPowerW      float64
	PowerUtil       float64 // mean power / provisioned cap
	EnergyKWh       float64
	CapOverFrac     float64 // fraction of time above the cap
	CapEvents       int
	SLOViolFrac     float64 // fraction of time p99 exceeded the SLO
	MeanSlack       float64
	ProvisionedCapW float64
}

// Metrics returns the host's accumulated run statistics.
func (h *Host) Metrics() Metrics {
	capStats := h.capTrack.Stats()
	dur := h.totalDur.Seconds()
	perBE := make(map[string]float64, len(h.beOpsBy))
	for name, c := range h.beOpsBy {
		perBE[name] = c.Total()
	}
	m := Metrics{
		Host:            h.name,
		DurationSec:     dur,
		BEOps:           h.beOps.Total(),
		BEOpsBy:         perBE,
		LCOps:           h.lcOps.Total(),
		MeanPowerW:      capStats.MeanW,
		PeakPowerW:      capStats.PeakW,
		PowerUtil:       capStats.Utilization,
		EnergyKWh:       h.energy.KWh(),
		CapOverFrac:     capStats.OverFrac,
		CapEvents:       capStats.Events,
		MeanSlack:       h.slackSeries.TimeWeightedMean(),
		ProvisionedCapW: h.capW,
	}
	if dur > 0 {
		m.BEMeanThr = m.BEOps / dur
		m.SLOViolFrac = h.sloViolDur.Seconds() / dur
	}
	return m
}

// PowerSeries returns the per-tick true power series.
func (h *Host) PowerSeries() *telemetry.Series { return h.powerSeries }

// P95Series returns the per-tick observed p95 series.
func (h *Host) P95Series() *telemetry.Series { return h.p95Series }

// P99Series returns the per-tick observed p99 series.
func (h *Host) P99Series() *telemetry.Series { return h.p99Series }

// LoadSeries returns the per-tick offered load series.
func (h *Host) LoadSeries() *telemetry.Series { return h.loadSeries }

// BEThroughputSeries returns the per-tick BE throughput series.
func (h *Host) BEThroughputSeries() *telemetry.Series { return h.beThrSeries }

// SlackSeries returns the per-tick relative p99 slack series.
func (h *Host) SlackSeries() *telemetry.Series { return h.slackSeries }

// BEThroughput returns the instantaneous best-effort throughput in ops/s.
func (h *Host) BEThroughput() float64 { return h.curBEThr }
