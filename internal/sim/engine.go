package sim

import (
	"errors"
	"fmt"
	"time"
)

// Task is a periodic controller callback: the server manager's 1 s
// allocation loop and the 100 ms power capper both run as tasks.
type Task func(now time.Time)

type periodicTask struct {
	period time.Duration
	fn     Task
	next   time.Time
}

// Observer is called at the end of every engine tick, after all hosts have
// stepped and all due periodic tasks have fired — the per-tick observe
// path. The invariant harness registers itself here so cross-layer
// invariants are checked against the exact state controllers acted on.
type Observer func(now time.Time)

// Engine advances a set of hosts through simulated time with a fixed tick,
// firing periodic tasks in registration order whenever their period
// elapses. Tasks run between host steps, mirroring controllers that read
// fresh telemetry and adjust allocations for the next interval.
type Engine struct {
	dt        time.Duration
	start     time.Time
	now       time.Time
	hosts     []*Host
	tasks     []*periodicTask
	observers []Observer
	ran       bool
}

// NewEngine creates an engine stepping with tick dt (e.g. 100 ms).
func NewEngine(dt time.Duration) (*Engine, error) {
	if dt <= 0 {
		return nil, errors.New("sim: tick must be positive")
	}
	start := time.Unix(0, 0).UTC()
	return &Engine{dt: dt, start: start, now: start}, nil
}

// Now returns the current simulated time.
func (e *Engine) Now() time.Time { return e.now }

// Elapsed returns the simulated time since the engine started.
func (e *Engine) Elapsed() time.Duration { return e.now.Sub(e.start) }

// AddHost registers a host; hosts step in registration order each tick.
func (e *Engine) AddHost(h *Host) error {
	if h == nil {
		return errors.New("sim: nil host")
	}
	for _, existing := range e.hosts {
		if existing.name == h.name {
			return fmt.Errorf("sim: duplicate host %q", h.name)
		}
	}
	e.hosts = append(e.hosts, h)
	return nil
}

// Hosts returns the registered hosts in registration order.
func (e *Engine) Hosts() []*Host { return append([]*Host(nil), e.hosts...) }

// Every registers fn to run once per period, starting one period after the
// current time. Periods shorter than the tick fire every tick.
func (e *Engine) Every(period time.Duration, fn Task) error {
	if period <= 0 {
		return errors.New("sim: task period must be positive")
	}
	if fn == nil {
		return errors.New("sim: nil task")
	}
	e.tasks = append(e.tasks, &periodicTask{period: period, fn: fn, next: e.now.Add(period)})
	return nil
}

// Observe registers fn to run at the end of every tick, after hosts step
// and periodic tasks fire. Observers run in registration order.
func (e *Engine) Observe(fn Observer) error {
	if fn == nil {
		return errors.New("sim: nil observer")
	}
	e.observers = append(e.observers, fn)
	return nil
}

// Run advances the simulation by d. It may be called repeatedly to extend
// a run; state carries over.
func (e *Engine) Run(d time.Duration) error {
	if len(e.hosts) == 0 {
		return errors.New("sim: no hosts registered")
	}
	if d <= 0 {
		return errors.New("sim: run duration must be positive")
	}
	end := e.now.Add(d)
	for e.now.Before(end) {
		e.now = e.now.Add(e.dt)
		for _, h := range e.hosts {
			h.step(e.start, e.now, e.dt)
		}
		for _, t := range e.tasks {
			for !t.next.After(e.now) {
				t.fn(e.now)
				t.next = t.next.Add(t.period)
			}
		}
		for _, o := range e.observers {
			o(e.now)
		}
	}
	e.ran = true
	return nil
}

// Metrics returns the per-host metrics in registration order.
func (e *Engine) Metrics() []Metrics {
	out := make([]Metrics, len(e.hosts))
	for i, h := range e.hosts {
		out[i] = h.Metrics()
	}
	return out
}
