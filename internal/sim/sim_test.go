package sim

import (
	"math"
	"reflect"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/workload"
)

func testCatalog(t *testing.T) (*workload.Catalog, machine.Config) {
	t.Helper()
	return workload.MustDefaults(), machine.XeonE52650()
}

func constTrace(t *testing.T, level float64) workload.Trace {
	t.Helper()
	tr, err := workload.NewConstantTrace(level)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func mustSpec(t *testing.T, cat *workload.Catalog, name string) *workload.Spec {
	t.Helper()
	s, err := cat.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewHostValidation(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be := mustSpec(t, cat, "graph")
	tr := constTrace(t, 0.5)

	cases := []struct {
		name string
		hc   HostConfig
	}{
		{"empty name", HostConfig{Machine: cfg, LC: lc, Trace: tr}},
		{"nil LC", HostConfig{Name: "h", Machine: cfg, Trace: tr}},
		{"BE as LC", HostConfig{Name: "h", Machine: cfg, LC: be, Trace: tr}},
		{"LC as BE", HostConfig{Name: "h", Machine: cfg, LC: lc, BE: lc, Trace: tr}},
		{"nil trace", HostConfig{Name: "h", Machine: cfg, LC: lc}},
		{"cap below idle", HostConfig{Name: "h", Machine: cfg, LC: lc, Trace: tr, CapW: 10}},
		{"bad machine", HostConfig{Name: "h", LC: lc, Trace: tr}},
	}
	for _, c := range cases {
		if _, err := NewHost(c.hc); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestHostDefaultsAndAccessors(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be := mustSpec(t, cat, "rnn")
	h, err := NewHost(HostConfig{
		Name: "h0", Machine: cfg, LC: lc, BE: be, Trace: constTrace(t, 0.5), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Name() != "h0" {
		t.Errorf("Name = %q", h.Name())
	}
	if h.CapW() != lc.ProvisionedPowerW {
		t.Errorf("CapW = %v, want provisioned %v", h.CapW(), lc.ProvisionedPowerW)
	}
	if h.LC() != lc || h.BE() != be {
		t.Error("spec accessors broken")
	}
	if h.Machine().Cores != cfg.Cores {
		t.Error("Machine accessor broken")
	}
	// LC starts with the full machine, BE with nothing.
	a, err := h.Server().Alloc(lc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cores != cfg.Cores || a.Ways != cfg.LLCWays {
		t.Errorf("LC initial alloc = %+v", a)
	}
	b, err := h.Server().Alloc(be.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsZero() {
		t.Errorf("BE initial alloc = %+v", b)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(0); err == nil {
		t.Error("expected error for zero tick")
	}
	e, err := NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddHost(nil); err == nil {
		t.Error("expected error for nil host")
	}
	if err := e.Every(0, func(time.Time) {}); err == nil {
		t.Error("expected error for zero period")
	}
	if err := e.Every(time.Second, nil); err == nil {
		t.Error("expected error for nil task")
	}
	if err := e.Run(time.Second); err == nil {
		t.Error("expected error running with no hosts")
	}
}

func TestEngineDuplicateHost(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "img-dnn")
	mk := func() *Host {
		h, err := NewHost(HostConfig{Name: "dup", Machine: cfg, LC: lc, Trace: constTrace(t, 0.3)})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(mk()); err != nil {
		t.Fatal(err)
	}
	if err := e.AddHost(mk()); err == nil {
		t.Error("expected duplicate host error")
	}
	if got := len(e.Hosts()); got != 1 {
		t.Errorf("Hosts = %d", got)
	}
}

func TestEngineRunAndTasks(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	h, err := NewHost(HostConfig{Name: "h0", Machine: cfg, LC: lc, Trace: constTrace(t, 0.5), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	var secTicks, fastTicks int
	if err := e.Every(time.Second, func(time.Time) { secTicks++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Every(100*time.Millisecond, func(time.Time) { fastTicks++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if secTicks != 10 {
		t.Errorf("1s task fired %d times, want 10", secTicks)
	}
	if fastTicks != 100 {
		t.Errorf("100ms task fired %d times, want 100", fastTicks)
	}
	if e.Elapsed() != 10*time.Second {
		t.Errorf("Elapsed = %v", e.Elapsed())
	}
	if err := e.Run(0); err == nil {
		t.Error("expected error for zero run duration")
	}
	// Run extends.
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if e.Elapsed() != 15*time.Second {
		t.Errorf("Elapsed after extension = %v", e.Elapsed())
	}
}

func TestHostMetricsLCOnly(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	h, err := NewHost(HostConfig{Name: "h0", Machine: cfg, LC: lc, Trace: constTrace(t, 0.5), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := h.Metrics()
	if m.Host != "h0" || m.DurationSec != 30 {
		t.Errorf("metrics header: %+v", m)
	}
	// At 50% load on the full machine the SLO must hold with slack.
	if m.SLOViolFrac > 0.01 {
		t.Errorf("SLO violated %.2f%% of the time at half load", m.SLOViolFrac*100)
	}
	if m.MeanSlack < 0.1 {
		t.Errorf("mean slack = %v, want comfortable", m.MeanSlack)
	}
	// LC goodput ≈ offered load × duration.
	wantOps := 0.5 * lc.PeakLoad * 30
	if math.Abs(m.LCOps-wantOps)/wantOps > 0.01 {
		t.Errorf("LCOps = %v, want ≈%v", m.LCOps, wantOps)
	}
	// Power must be between idle and provisioned cap at half load.
	if m.MeanPowerW <= cfg.IdlePowerW || m.MeanPowerW >= lc.ProvisionedPowerW {
		t.Errorf("MeanPowerW = %v", m.MeanPowerW)
	}
	if m.PowerUtil <= 0 || m.PowerUtil >= 1 {
		t.Errorf("PowerUtil = %v", m.PowerUtil)
	}
	if m.EnergyKWh <= 0 {
		t.Errorf("EnergyKWh = %v", m.EnergyKWh)
	}
	if m.BEOps != 0 || m.BEMeanThr != 0 {
		t.Errorf("BE metrics nonzero without a BE tenant: %+v", m)
	}
	// Series were recorded every tick.
	if h.PowerSeries().Len() != 300 || h.P99Series().Len() != 300 {
		t.Errorf("series lengths: power=%d p99=%d", h.PowerSeries().Len(), h.P99Series().Len())
	}
	if h.LoadSeries().Len() != 300 || h.BEThroughputSeries().Len() != 300 {
		t.Error("load/BE series not recorded")
	}
}

func TestHostBEThroughputAccrues(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be := mustSpec(t, cat, "rnn")
	h, err := NewHost(HostConfig{Name: "h0", Machine: cfg, LC: lc, BE: be, Trace: constTrace(t, 0.1), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Carve out spare resources for the BE app by hand: LC keeps 2c/4w.
	if err := h.Server().SetAlloc(lc.Name, machine.Alloc{Cores: 2, Ways: 4, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Server().SetAlloc(be.Name, machine.Alloc{Cores: 10, Ways: 16, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := h.Metrics()
	wantThr := be.Throughput(machine.Alloc{Cores: 10, Ways: 16, FreqGHz: 2.2, Duty: 1})
	if math.Abs(m.BEMeanThr-wantThr)/wantThr > 0.01 {
		t.Errorf("BEMeanThr = %v, want ≈%v", m.BEMeanThr, wantThr)
	}
	if m.BEOps < wantThr*9.9 {
		t.Errorf("BEOps = %v", m.BEOps)
	}
	// Engine metrics mirror host metrics.
	all := e.Metrics()
	if len(all) != 1 || all[0].BEOps != m.BEOps {
		t.Error("engine metrics mismatch")
	}
}

func TestHostSLOViolationDetected(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	h, err := NewHost(HostConfig{Name: "h0", Machine: cfg, LC: lc, Trace: constTrace(t, 0.9), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Starve the LC app: 1 core, 1 way cannot sustain 90% load.
	if err := h.Server().SetAlloc(lc.Name, machine.Alloc{Cores: 1, Ways: 1, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := h.Metrics()
	if m.SLOViolFrac < 0.99 {
		t.Errorf("SLOViolFrac = %v, want ≈1 for a starved app", m.SLOViolFrac)
	}
	if h.Slack() >= 0 {
		t.Errorf("Slack = %v, want negative", h.Slack())
	}
	// Goodput is capped by the tiny allocation.
	if m.LCOps >= 0.9*lc.PeakLoad*5 {
		t.Error("goodput should be capacity-limited")
	}
}

func TestHostDeterminism(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "sphinx")
	run := func() Metrics {
		h, err := NewHost(HostConfig{Name: "h0", Machine: cfg, LC: lc, Trace: constTrace(t, 0.4), Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		e, _ := NewEngine(100 * time.Millisecond)
		if err := e.AddHost(h); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		return h.Metrics()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different metrics:\n%+v\n%+v", a, b)
	}
}

func TestHostMeterReadingAvailable(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "img-dnn")
	h, err := NewHost(HostConfig{Name: "h0", Machine: cfg, LC: lc, Trace: constTrace(t, 0.5), Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r := h.MeterReading()
	if r.Time.IsZero() || r.Watts <= cfg.IdlePowerW/2 {
		t.Errorf("meter reading = %+v", r)
	}
	if h.OfferedLoad() <= 0 {
		t.Errorf("OfferedLoad = %v", h.OfferedLoad())
	}
	if h.ObservedP99() <= 0 {
		t.Errorf("ObservedP99 = %v", h.ObservedP99())
	}
}

func TestHostMultiBE(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be1 := mustSpec(t, cat, "rnn")
	be2 := mustSpec(t, cat, "lstm")
	h, err := NewHost(HostConfig{
		Name: "multi", Machine: cfg, LC: lc, BE: be1, ExtraBE: []*workload.Spec{be2},
		Trace: constTrace(t, 0.1), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.BEs()); got != 2 {
		t.Fatalf("BEs = %d", got)
	}
	if h.BE() != be1 {
		t.Error("BE() should return the first co-runner")
	}
	// Carve the machine: LC small, each BE half the remainder.
	if err := h.Server().SetAlloc(lc.Name, machine.Alloc{Cores: 2, Ways: 4, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Server().SetAlloc("rnn", machine.Alloc{Cores: 5, Ways: 8, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Server().SetAlloc("lstm", machine.Alloc{Cores: 5, Ways: 8, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(100 * time.Millisecond)
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	m := h.Metrics()
	if m.BEOpsBy["rnn"] <= 0 || m.BEOpsBy["lstm"] <= 0 {
		t.Errorf("per-BE ops: %v", m.BEOpsBy)
	}
	total := m.BEOpsBy["rnn"] + m.BEOpsBy["lstm"]
	if math.Abs(total-m.BEOps)/m.BEOps > 1e-9 {
		t.Errorf("per-BE ops %v do not sum to total %v", total, m.BEOps)
	}
	// Both co-runners contribute to server power.
	if m.MeanPowerW < cfg.IdlePowerW+30 {
		t.Errorf("power %v too low for two saturating co-runners", m.MeanPowerW)
	}
}

func TestHostMultiBEValidation(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be := mustSpec(t, cat, "rnn")
	tr := constTrace(t, 0.5)
	if _, err := NewHost(HostConfig{Name: "h", Machine: cfg, LC: lc, BE: be,
		ExtraBE: []*workload.Spec{be}, Trace: tr}); err == nil {
		t.Error("expected error for duplicate co-runner")
	}
	if _, err := NewHost(HostConfig{Name: "h", Machine: cfg, LC: lc,
		ExtraBE: []*workload.Spec{nil}, Trace: tr}); err == nil {
		t.Error("expected error for nil co-runner")
	}
	if _, err := NewHost(HostConfig{Name: "h", Machine: cfg, LC: lc,
		ExtraBE: []*workload.Spec{lc}, Trace: tr}); err == nil {
		t.Error("expected error for LC spec as co-runner")
	}
}
