package sim

import (
	"math"
	"testing"
	"time"

	"pocolo/internal/machine"
)

// pathologicalTrace returns out-of-contract load fractions to probe the
// host's robustness against a buggy load source.
type pathologicalTrace struct{ mode int }

func (p pathologicalTrace) LoadFraction(t time.Duration) float64 {
	switch p.mode {
	case 0:
		return -0.5 // negative offered load
	case 1:
		return 3.0 // load far beyond peak
	default:
		return math.NaN()
	}
}
func (p pathologicalTrace) Duration() time.Duration { return time.Minute }
func (p pathologicalTrace) String() string          { return "pathological" }

func TestHostSurvivesPathologicalTraces(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	for mode := 0; mode <= 2; mode++ {
		h, err := NewHost(HostConfig{
			Name: "fault", Machine: cfg, LC: lc,
			Trace: pathologicalTrace{mode: mode}, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(100 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddHost(h); err != nil {
			t.Fatal(err)
		}
		// Must not panic; accounting must stay sane.
		if err := e.Run(5 * time.Second); err != nil {
			t.Fatal(err)
		}
		m := h.Metrics()
		if m.LCOps < 0 {
			t.Errorf("mode %d: negative goodput %v", mode, m.LCOps)
		}
		if m.BEOps < 0 {
			t.Errorf("mode %d: negative BE ops %v", mode, m.BEOps)
		}
		if m.MeanPowerW < 0 || math.IsNaN(m.MeanPowerW) {
			t.Errorf("mode %d: broken power accounting %v", mode, m.MeanPowerW)
		}
		if m.EnergyKWh < 0 || math.IsNaN(m.EnergyKWh) {
			t.Errorf("mode %d: broken energy accounting %v", mode, m.EnergyKWh)
		}
	}
}

func TestHostWithStaleMeter(t *testing.T) {
	// A meter that updates once a minute (a stalled telemetry pipeline):
	// the host must keep running and the reading must simply be stale, not
	// corrupt.
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be := mustSpec(t, cat, "graph")
	h, err := NewHost(HostConfig{
		Name: "stale", Machine: cfg, LC: lc, BE: be,
		Trace: constTrace(t, 0.5), MeterPeriod: time.Minute, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	first := h.MeterReading()
	if err := e.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	second := h.MeterReading()
	if first.Time != second.Time || first.Watts != second.Watts {
		t.Error("a one-minute meter should hold its reading across 20 s")
	}
	// Ground-truth accounting (energy, cap stats) is meter-independent.
	if h.Metrics().EnergyKWh <= 0 {
		t.Error("energy accounting should not depend on the meter period")
	}
}

func TestAppPowerMeter(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "xapian")
	be := mustSpec(t, cat, "graph")
	h, err := NewHost(HostConfig{
		Name: "appmeter", Machine: cfg, LC: lc, BE: be,
		Trace: constTrace(t, 0.5), Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Server().SetAlloc(lc.Name, machine.Alloc{Cores: 6, Ways: 10, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.Server().SetAlloc(be.Name, machine.Alloc{Cores: 6, Ways: 10, FreqGHz: 2.2, Duty: 1}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	lcW, err := h.AppPowerW(lc.Name)
	if err != nil {
		t.Fatal(err)
	}
	beW, err := h.AppPowerW(be.Name)
	if err != nil {
		t.Fatal(err)
	}
	if lcW <= 0 || beW <= 0 {
		t.Errorf("app powers: lc=%v be=%v", lcW, beW)
	}
	// The apportioned parts plus the idle floor approximate the server
	// draw (within meter noise).
	total := cfg.IdlePowerW + lcW + beW
	server := h.MeterReading().Watts
	if math.Abs(total-server)/server > 0.10 {
		t.Errorf("apportioned %v vs server %v diverge", total, server)
	}
	if _, err := h.AppPowerW("ghost"); err == nil {
		t.Error("expected error for unknown tenant")
	}
}

func TestP95Telemetry(t *testing.T) {
	cat, cfg := testCatalog(t)
	lc := mustSpec(t, cat, "img-dnn")
	h, err := NewHost(HostConfig{Name: "p95", Machine: cfg, LC: lc, Trace: constTrace(t, 0.6), Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddHost(h); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	p95, p99 := h.ObservedP95(), h.ObservedP99()
	if p95 <= 0 || p99 <= 0 {
		t.Fatalf("latency observations: p95=%v p99=%v", p95, p99)
	}
	// Tails are ordered on average; with observation noise allow headroom
	// on the instantaneous pair.
	if p95 > p99*1.2 {
		t.Errorf("p95 %v far above p99 %v", p95, p99)
	}
	if h.P95Series().Len() != h.P99Series().Len() {
		t.Error("p95 series should track p99 series")
	}
}
