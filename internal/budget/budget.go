// Package budget distributes a cluster-level power budget across servers —
// the hierarchical power management layer of systems like Facebook's
// Dynamo, which the paper builds alongside (Section VI cites it as the
// datacenter-wide power telemetry/capping substrate). Pocolo's servers
// each enforce a per-server cap; when the datacenter's aggregate budget is
// tighter than the sum of provisioned capacities, a Budgeter periodically
// re-divides the total among the servers and installs the shares through
// each server manager's SetCapW hook.
//
// Two division policies are provided: a static equal split, and a
// demand-proportional split that follows each server's smoothed power draw
// — servers whose primaries are at peak get more of the budget than
// servers coasting at 10% load, which is exactly when their co-runners can
// use it.
package budget

import (
	"errors"
	"fmt"
	"time"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
)

// Policy selects how the total budget is divided.
type Policy int

const (
	// EqualSplit gives every server Total/n regardless of demand.
	EqualSplit Policy = iota
	// DemandProportional divides the budget in proportion to each server's
	// smoothed power draw (plus a request margin), clamped between the
	// idle floor and the server's provisioned capacity, with the remainder
	// redistributed.
	DemandProportional
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EqualSplit:
		return "equal-split"
	case DemandProportional:
		return "demand-proportional"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config assembles a budgeter.
type Config struct {
	// TotalW is the cluster power budget to divide; required.
	TotalW float64
	// Hosts and Managers are parallel slices of the servers under the
	// budget; required, same length.
	Hosts    []*sim.Host
	Managers []*servermgr.Manager
	// Policy selects the division rule (default EqualSplit).
	Policy Policy
	// Period is the rebalance interval (default 5 s; Dynamo-class
	// controllers act on seconds-scale windows).
	Period time.Duration
	// Smoothing is the EWMA coefficient on power readings in (0, 1]
	// (default 0.5; 1 = use the latest reading only).
	Smoothing float64
	// MarginW is the demand headroom added to each server's smoothed draw
	// before dividing (default 5 W), letting throttled servers signal
	// appetite beyond their current (capped) draw.
	MarginW float64
}

// Budgeter periodically re-divides a cluster power budget.
type Budgeter struct {
	total     float64
	hosts     []*sim.Host
	managers  []*servermgr.Manager
	policy    Policy
	period    time.Duration
	smoothing float64
	marginW   float64

	ewmaW      []float64
	rebalances int
	lastShares []float64
}

// New validates the configuration and builds a budgeter.
func New(cfg Config) (*Budgeter, error) {
	if len(cfg.Hosts) == 0 {
		return nil, errors.New("budget: no hosts")
	}
	if len(cfg.Hosts) != len(cfg.Managers) {
		return nil, errors.New("budget: hosts and managers must be parallel")
	}
	for i, h := range cfg.Hosts {
		if h == nil || cfg.Managers[i] == nil {
			return nil, fmt.Errorf("budget: nil host or manager at %d", i)
		}
	}
	// The budget must at least keep every server above its idle floor.
	var floor float64
	for _, h := range cfg.Hosts {
		floor += h.Machine().IdlePowerW + 1
	}
	if cfg.TotalW <= floor {
		return nil, fmt.Errorf("budget: total %v W cannot keep %d servers above their idle floors (%v W)", cfg.TotalW, len(cfg.Hosts), floor)
	}
	period := cfg.Period
	if period == 0 {
		period = 5 * time.Second
	}
	if period <= 0 {
		return nil, errors.New("budget: period must be positive")
	}
	smoothing := cfg.Smoothing
	if smoothing == 0 {
		smoothing = 0.5
	}
	if smoothing <= 0 || smoothing > 1 {
		return nil, errors.New("budget: smoothing outside (0, 1]")
	}
	marginW := cfg.MarginW
	if marginW == 0 {
		marginW = 5
	}
	if marginW < 0 {
		return nil, errors.New("budget: margin must be non-negative")
	}
	b := &Budgeter{
		total:      cfg.TotalW,
		hosts:      append([]*sim.Host(nil), cfg.Hosts...),
		managers:   append([]*servermgr.Manager(nil), cfg.Managers...),
		policy:     cfg.Policy,
		period:     period,
		smoothing:  smoothing,
		marginW:    marginW,
		ewmaW:      make([]float64, len(cfg.Hosts)),
		lastShares: make([]float64, len(cfg.Hosts)),
	}
	return b, nil
}

// Attach registers the rebalance loop on the engine and installs an
// initial division.
func (b *Budgeter) Attach(e *sim.Engine) error {
	if e == nil {
		return errors.New("budget: nil engine")
	}
	b.Rebalance(e.Now())
	return e.Every(b.period, b.Rebalance)
}

// Rebalance reads the power meters, updates the demand estimates, and
// installs fresh per-server budgets.
func (b *Budgeter) Rebalance(time.Time) {
	n := len(b.hosts)
	for i, h := range b.hosts {
		w := h.MeterReading().Watts
		if w <= 0 {
			w = h.Machine().IdlePowerW
		}
		if b.ewmaW[i] == 0 {
			b.ewmaW[i] = w
		} else {
			b.ewmaW[i] = b.smoothing*w + (1-b.smoothing)*b.ewmaW[i]
		}
	}

	shares := make([]float64, n)
	switch b.policy {
	case DemandProportional:
		b.proportional(shares)
	default:
		for i := range shares {
			shares[i] = b.total / float64(n)
		}
		// Clamp equal shares to provisioned capacities and spill the
		// excess to unclamped servers so the whole budget stays usable.
		b.spillOver(shares)
	}
	for i, mgr := range b.managers {
		// Never assign below the idle floor; SetCapW would reject it.
		floor := b.hosts[i].Machine().IdlePowerW + 1
		if shares[i] < floor {
			shares[i] = floor
		}
		_ = mgr.SetCapW(shares[i])
	}
	copy(b.lastShares, shares)
	b.rebalances++
}

// proportional divides the total in proportion to smoothed demand, clamped
// per server to [idle floor, provisioned capacity], redistributing any
// clamped-off remainder.
func (b *Budgeter) proportional(shares []float64) {
	n := len(b.hosts)
	demand := make([]float64, n)
	for i := range demand {
		demand[i] = b.ewmaW[i] + b.marginW
	}
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := b.total
	for iter := 0; iter < n+1; iter++ {
		sum := 0.0
		for i, a := range active {
			if a {
				sum += demand[i]
			}
		}
		if sum <= 0 {
			break
		}
		clamped := false
		for i, a := range active {
			if !a {
				continue
			}
			want := remaining * demand[i] / sum
			capW := b.hosts[i].CapW()
			if want >= capW {
				shares[i] = capW
				remaining -= capW
				active[i] = false
				clamped = true
			}
		}
		if clamped {
			continue
		}
		for i, a := range active {
			if a {
				shares[i] = remaining * demand[i] / sum
			}
		}
		return
	}
	// Everything clamped: shares already set.
}

// spillOver clamps shares to provisioned capacities and redistributes the
// clipped excess across unclamped servers.
func (b *Budgeter) spillOver(shares []float64) {
	for iter := 0; iter < len(shares); iter++ {
		excess := 0.0
		var openIdx []int
		for i := range shares {
			capW := b.hosts[i].CapW()
			if shares[i] > capW {
				excess += shares[i] - capW
				shares[i] = capW
			} else if shares[i] < capW {
				openIdx = append(openIdx, i)
			}
		}
		if excess == 0 || len(openIdx) == 0 {
			return
		}
		per := excess / float64(len(openIdx))
		for _, i := range openIdx {
			shares[i] += per
		}
	}
}

// Shares returns the most recently installed per-server budgets.
func (b *Budgeter) Shares() []float64 {
	return append([]float64(nil), b.lastShares...)
}

// Rebalances returns the number of divisions installed so far.
func (b *Budgeter) Rebalances() int { return b.rebalances }

// TotalW returns the cluster budget.
func (b *Budgeter) TotalW() float64 { return b.total }
