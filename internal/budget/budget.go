// Package budget distributes a cluster-level power budget across servers —
// the hierarchical power management layer of systems like Facebook's
// Dynamo, which the paper builds alongside (Section VI cites it as the
// datacenter-wide power telemetry/capping substrate). Pocolo's servers
// each enforce a per-server cap; when the datacenter's aggregate budget is
// tighter than the sum of provisioned capacities, a Budgeter periodically
// re-divides the total among the servers and installs the shares through
// each server manager's SetCapW hook.
//
// Two division policies are provided: a static equal split, and a
// demand-proportional split that follows each server's smoothed power draw
// — servers whose primaries are at peak get more of the budget than
// servers coasting at 10% load, which is exactly when their co-runners can
// use it.
package budget

import (
	"errors"
	"fmt"
	"time"

	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
)

// Policy selects how the total budget is divided.
type Policy int

const (
	// EqualSplit gives every server Total/n regardless of demand.
	EqualSplit Policy = iota
	// DemandProportional divides the budget in proportion to each server's
	// smoothed power draw (plus a request margin), clamped between the
	// idle floor and the server's provisioned capacity, with the remainder
	// redistributed.
	DemandProportional
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case EqualSplit:
		return "equal-split"
	case DemandProportional:
		return "demand-proportional"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config assembles a budgeter.
type Config struct {
	// TotalW is the cluster power budget to divide; required.
	TotalW float64
	// Hosts and Managers are parallel slices of the servers under the
	// budget; required, same length.
	Hosts    []*sim.Host
	Managers []*servermgr.Manager
	// Policy selects the division rule (default EqualSplit).
	Policy Policy
	// Period is the rebalance interval (default 5 s; Dynamo-class
	// controllers act on seconds-scale windows).
	Period time.Duration
	// Smoothing is the EWMA coefficient on power readings in (0, 1]
	// (nil selects DefaultSmoothing; 1 = use the latest reading only).
	// Use Float to set it inline.
	Smoothing *float64
	// MarginW is the demand headroom added to each server's smoothed draw
	// before dividing (nil selects DefaultMarginW), letting throttled
	// servers signal appetite beyond their current (capped) draw. An
	// explicit zero margin is valid and means "divide by smoothed draw
	// alone" — the pointer distinguishes it from an unset field.
	MarginW *float64
}

// Budgeter periodically re-divides a cluster power budget.
type Budgeter struct {
	total     float64
	hosts     []*sim.Host
	managers  []*servermgr.Manager
	policy    Policy
	period    time.Duration
	smoothing float64
	marginW   float64

	est        *DemandEstimator
	rebalances int
	lastShares []float64
}

// New validates the configuration and builds a budgeter.
func New(cfg Config) (*Budgeter, error) {
	if len(cfg.Hosts) == 0 {
		return nil, errors.New("budget: no hosts")
	}
	if len(cfg.Hosts) != len(cfg.Managers) {
		return nil, errors.New("budget: hosts and managers must be parallel")
	}
	for i, h := range cfg.Hosts {
		if h == nil || cfg.Managers[i] == nil {
			return nil, fmt.Errorf("budget: nil host or manager at %d", i)
		}
	}
	// The budget must at least keep every server above its idle floor.
	var floor float64
	for _, h := range cfg.Hosts {
		floor += h.Machine().IdlePowerW + 1
	}
	if cfg.TotalW <= floor {
		return nil, fmt.Errorf("budget: total %v W cannot keep %d servers above their idle floors (%v W)", cfg.TotalW, len(cfg.Hosts), floor)
	}
	period := cfg.Period
	if period == 0 {
		period = 5 * time.Second
	}
	if period <= 0 {
		return nil, errors.New("budget: period must be positive")
	}
	smoothing, err := ResolveSmoothing(cfg.Smoothing)
	if err != nil {
		return nil, err
	}
	marginW, err := ResolveMarginW(cfg.MarginW)
	if err != nil {
		return nil, err
	}
	b := &Budgeter{
		total:      cfg.TotalW,
		hosts:      append([]*sim.Host(nil), cfg.Hosts...),
		managers:   append([]*servermgr.Manager(nil), cfg.Managers...),
		policy:     cfg.Policy,
		period:     period,
		smoothing:  smoothing,
		marginW:    marginW,
		est:        NewDemandEstimator(len(cfg.Hosts), smoothing, marginW),
		lastShares: make([]float64, len(cfg.Hosts)),
	}
	return b, nil
}

// Attach registers the rebalance loop on the engine and installs an
// initial division.
func (b *Budgeter) Attach(e *sim.Engine) error {
	if e == nil {
		return errors.New("budget: nil engine")
	}
	b.Rebalance(e.Now())
	return e.Every(b.period, b.Rebalance)
}

// Rebalance reads the power meters, updates the demand estimates, and
// installs fresh per-server budgets. Division goes through the shared
// helpers in divide.go: proportional or equal split clamped to the
// provisioned capacities, then a floor pass that keeps every server above
// its idle floor by draining headroom from the others, so the installed
// shares never sum beyond the budget.
func (b *Budgeter) Rebalance(time.Time) {
	n := len(b.hosts)
	caps := make([]float64, n)
	floors := make([]float64, n)
	for i, h := range b.hosts {
		b.est.Observe(i, h.MeterReading().Watts, h.Machine().IdlePowerW)
		caps[i] = h.CapW()
		floors[i] = h.Machine().IdlePowerW + 1
	}

	var shares []float64
	switch b.policy {
	case DemandProportional:
		demand := make([]float64, n)
		for i := range demand {
			demand[i] = b.est.Demand(i)
		}
		shares = DivideProportional(b.total, demand, caps)
	default:
		shares = DivideEqual(b.total, caps)
	}
	ApplyFloors(shares, floors)
	for i, mgr := range b.managers {
		_ = mgr.SetCapW(shares[i])
	}
	copy(b.lastShares, shares)
	b.rebalances++
}

// Shares returns the most recently installed per-server budgets.
func (b *Budgeter) Shares() []float64 {
	return append([]float64(nil), b.lastShares...)
}

// Rebalances returns the number of divisions installed so far.
func (b *Budgeter) Rebalances() int { return b.rebalances }

// TotalW returns the cluster budget.
func (b *Budgeter) TotalW() float64 { return b.total }

// Smoothing returns the resolved EWMA coefficient.
func (b *Budgeter) Smoothing() float64 { return b.smoothing }

// MarginW returns the resolved demand margin.
func (b *Budgeter) MarginW() float64 { return b.marginW }
