package budget

import (
	"math"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// rig builds a cluster of hosts with distinct constant loads, each running
// a co-runner, plus managers and an engine.
type rig struct {
	hosts    []*sim.Host
	managers []*servermgr.Manager
	engine   *sim.Engine
}

var fittedModels map[string]*utility.Model

func buildRig(t *testing.T, loads []float64) *rig {
	t.Helper()
	withBE := make([]bool, len(loads))
	for i := range withBE {
		withBE[i] = true
	}
	return buildRigCustom(t, loads, withBE)
}

// buildRigCustom controls per-host whether a co-runner is present.
func buildRigCustom(t *testing.T, loads []float64, withBE []bool) *rig {
	t.Helper()
	cfg := machine.XeonE52650()
	cat := workload.MustDefaults()
	if fittedModels == nil {
		models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), 42)
		if err != nil {
			t.Fatal(err)
		}
		fittedModels = models
	}
	lcs := cat.LC()
	bes := cat.BE()
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{engine: engine}
	for i, load := range loads {
		lc := lcs[i%len(lcs)]
		trace, err := workload.NewConstantTrace(load)
		if err != nil {
			t.Fatal(err)
		}
		hc := sim.HostConfig{
			Name:    lc.Name,
			Machine: cfg,
			LC:      lc,
			Trace:   trace,
			Seed:    int64(i) * 71,
		}
		if withBE[i] {
			hc.BE = bes[i%len(bes)]
		}
		host, err := sim.NewHost(hc)
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.AddHost(host); err != nil {
			t.Fatal(err)
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host: host, Model: fittedModels[lc.Name], Policy: servermgr.PowerOptimized,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Attach(engine); err != nil {
			t.Fatal(err)
		}
		r.hosts = append(r.hosts, host)
		r.managers = append(r.managers, mgr)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	r := buildRig(t, []float64{0.3, 0.6})
	if _, err := New(Config{TotalW: 300}); err == nil {
		t.Error("expected error for no hosts")
	}
	if _, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers[:1]}); err == nil {
		t.Error("expected error for mismatched slices")
	}
	if _, err := New(Config{TotalW: 300, Hosts: []*sim.Host{nil, nil}, Managers: r.managers}); err == nil {
		t.Error("expected error for nil host")
	}
	if _, err := New(Config{TotalW: 80, Hosts: r.hosts, Managers: r.managers}); err == nil {
		t.Error("expected error for budget below the idle floors")
	}
	if _, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers, Period: -time.Second}); err == nil {
		t.Error("expected error for negative period")
	}
	if _, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers, Smoothing: Float(2)}); err == nil {
		t.Error("expected error for bad smoothing")
	}
	if _, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers, MarginW: Float(-1)}); err == nil {
		t.Error("expected error for negative margin")
	}
	if _, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers, Smoothing: Float(math.NaN())}); err == nil {
		t.Error("expected error for NaN smoothing")
	}
	if _, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers, MarginW: Float(math.Inf(1))}); err == nil {
		t.Error("expected error for infinite margin")
	}
	b, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(nil); err == nil {
		t.Error("expected error attaching to nil engine")
	}
	if b.TotalW() != 300 {
		t.Errorf("TotalW = %v", b.TotalW())
	}
	if EqualSplit.String() == "" || DemandProportional.String() == "" || Policy(9).String() == "" {
		t.Error("policy strings broken")
	}
}

func TestConfigSentinels(t *testing.T) {
	// Regression for the zero-value footgun: an unset Smoothing/MarginW
	// resolves to the documented defaults, while an explicit zero margin
	// sticks instead of being silently promoted to the default.
	r := buildRig(t, []float64{0.3, 0.6})
	b, err := New(Config{TotalW: 300, Hosts: r.hosts, Managers: r.managers})
	if err != nil {
		t.Fatal(err)
	}
	if b.Smoothing() != DefaultSmoothing {
		t.Errorf("nil Smoothing resolved to %v, want %v", b.Smoothing(), DefaultSmoothing)
	}
	if b.MarginW() != DefaultMarginW {
		t.Errorf("nil MarginW resolved to %v, want %v", b.MarginW(), DefaultMarginW)
	}
	b, err = New(Config{
		TotalW: 300, Hosts: r.hosts, Managers: r.managers,
		Smoothing: Float(1), MarginW: Float(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Smoothing() != 1 {
		t.Errorf("explicit smoothing 1 resolved to %v", b.Smoothing())
	}
	if b.MarginW() != 0 {
		t.Errorf("explicit zero margin resolved to %v, want 0", b.MarginW())
	}
}

func TestSharesNeverExceedTotalOrCaps(t *testing.T) {
	for _, policy := range []Policy{EqualSplit, DemandProportional} {
		r := buildRig(t, []float64{0.1, 0.8, 0.4, 0.6})
		var total float64
		for _, h := range r.hosts {
			total += h.CapW()
		}
		budgetW := 0.85 * total
		b, err := New(Config{TotalW: budgetW, Hosts: r.hosts, Managers: r.managers, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Attach(r.engine); err != nil {
			t.Fatal(err)
		}
		if err := r.engine.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		shares := b.Shares()
		sum := 0.0
		for i, s := range shares {
			sum += s
			if s > r.hosts[i].CapW()+1e-9 {
				t.Errorf("%v: share %v exceeds provisioned cap %v", policy, s, r.hosts[i].CapW())
			}
			if s <= r.hosts[i].Machine().IdlePowerW {
				t.Errorf("%v: share %v below the idle floor", policy, s)
			}
			if m := r.managers[i].CapW(); math.Abs(m-s) > 1e-9 {
				t.Errorf("%v: manager cap %v does not match share %v", policy, m, s)
			}
		}
		if sum > budgetW+1e-6 {
			t.Errorf("%v: shares sum %v exceed the total budget %v", policy, sum, budgetW)
		}
		if b.Rebalances() < 6 {
			t.Errorf("%v: only %d rebalances", policy, b.Rebalances())
		}
	}
}

func TestProportionalFollowsDemand(t *testing.T) {
	// One server at 80% load with a co-runner, one at 10% with no
	// co-runner (a genuinely idle demand): the busy server should get the
	// larger share under the proportional policy.
	r := buildRigCustom(t, []float64{0.8, 0.1}, []bool{true, false})
	budgetW := 0.8 * (r.hosts[0].CapW() + r.hosts[1].CapW())
	b, err := New(Config{
		TotalW: budgetW, Hosts: r.hosts, Managers: r.managers,
		Policy: DemandProportional, Period: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(r.engine); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	shares := b.Shares()
	if shares[0] <= shares[1] {
		t.Errorf("busy server share %v should exceed idle server share %v", shares[0], shares[1])
	}
}

func TestClusterStaysInsideBudget(t *testing.T) {
	// The end-to-end guarantee: with the budgeter installed, total cluster
	// power stays at or below the budget (after the first rebalances).
	r := buildRig(t, []float64{0.5, 0.3, 0.7, 0.2})
	var total float64
	for _, h := range r.hosts {
		total += h.CapW()
	}
	budgetW := 0.8 * total
	b, err := New(Config{
		TotalW: budgetW, Hosts: r.hosts, Managers: r.managers,
		Policy: DemandProportional, Period: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(r.engine); err != nil {
		t.Fatal(err)
	}
	// Warm up, then measure.
	if err := r.engine.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	over := 0
	samples := 0
	for i := 0; i < 30; i++ {
		if err := r.engine.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, h := range r.hosts {
			sum += h.MeterReading().Watts
		}
		samples++
		if sum > budgetW*1.02 {
			over++
		}
	}
	if frac := float64(over) / float64(samples); frac > 0.1 {
		t.Errorf("cluster exceeded the budget in %.0f%% of samples", frac*100)
	}
	// The LC applications must still be protected (they have priority over
	// the budget squeeze — only co-runners throttle).
	for _, h := range r.hosts {
		if m := h.Metrics(); m.SLOViolFrac > 0.10 {
			t.Errorf("%s: SLO violated %.1f%% under the cluster budget", h.Name(), m.SLOViolFrac*100)
		}
	}
}

func TestEqualSplitSpillsOverProvisionedCaps(t *testing.T) {
	// With a generous total, the equal split would hand some servers more
	// than their provisioned capacity; the spill-over must reassign it.
	r := buildRig(t, []float64{0.5, 0.5, 0.5, 0.5})
	var total float64
	for _, h := range r.hosts {
		total += h.CapW()
	}
	b, err := New(Config{TotalW: total * 0.99, Hosts: r.hosts, Managers: r.managers, Policy: EqualSplit})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(r.engine); err != nil {
		t.Fatal(err)
	}
	shares := b.Shares()
	// img-dnn and tpcc are provisioned at 133 W < the equal share of
	// ~150 W, so they clamp and the excess flows to sphinx/xapian.
	for i, h := range r.hosts {
		if shares[i] > h.CapW()+1e-9 {
			t.Errorf("share %v exceeds %s's provisioned %v", shares[i], h.Name(), h.CapW())
		}
	}
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if sum < total*0.95 {
		t.Errorf("spill-over lost budget: %v of %v assigned", sum, total*0.99)
	}
}
