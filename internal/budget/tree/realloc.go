package tree

import (
	"errors"
	"fmt"
	"sync"
	"time"

	pbudget "pocolo/internal/budget"
	"pocolo/internal/obs"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/trace"
)

// ConvergencePeriods is how many reallocation periods the installed caps
// are allowed to take to settle inside a freshly-cut budget. The first
// rebalance after a cut already divides the new bound; the second absorbs
// the shifted demand estimates. The tree-conservation invariant holds its
// fire for this many periods after every SetBudget.
const ConvergencePeriods = 2

// Config assembles a Reallocator.
type Config struct {
	// Tree is the validated budget hierarchy; required. The reallocator
	// owns it after construction — budget mutations go through
	// Reallocator.SetBudget.
	Tree *Tree
	// Hosts and Managers are the servers under the tree; required, one
	// per tree host leaf, matched by host name (any order).
	Hosts    []*sim.Host
	Managers []*servermgr.Manager
	// Period is the reallocation interval (default 5 s, like the flat
	// Budgeter).
	Period time.Duration
	// Smoothing and MarginW tune the shared demand estimator exactly as
	// on budget.Config (nil selects the defaults; use budget.Float).
	Smoothing *float64
	MarginW   *float64
	// Tracer, when non-nil, receives BudgetShift events for every host
	// share change and BudgetCut events for every runtime mutation.
	Tracer *trace.Tracer
	// Obs, when non-nil, receives the rebalance-latency histogram and a
	// per-host headroom gauge (installed share minus estimated demand).
	Obs *obs.Registry
}

// Reallocator periodically re-divides a budget tree across its hosts and
// installs the shares through each server manager. It implements the
// invariant.BudgetAuthority interface so the tree-conservation checker
// can read the live budgets.
type Reallocator struct {
	tree     *Tree
	hosts    []*sim.Host
	managers []*servermgr.Manager
	period   time.Duration
	tracer   *trace.Tracer

	// obsLatency times each Rebalance; obsHeadroom[i] is host i's
	// share-minus-demand watts (nil = disabled).
	obsLatency  *obs.Histogram
	obsHeadroom []*obs.Gauge

	mu           sync.Mutex
	est          *pbudget.DemandEstimator
	lastShares   []float64
	rebalances   int
	cuts         int
	lastCutAtReb int
}

// New validates the configuration and builds a reallocator. Hosts are
// matched to tree leaves by name and stored in tree Hosts() order.
func New(cfg Config) (*Reallocator, error) {
	if cfg.Tree == nil {
		return nil, errors.New("tree: nil tree")
	}
	names := cfg.Tree.Hosts()
	if len(cfg.Hosts) != len(names) {
		return nil, fmt.Errorf("tree: %d hosts for %d tree leaves", len(cfg.Hosts), len(names))
	}
	if len(cfg.Hosts) != len(cfg.Managers) {
		return nil, errors.New("tree: hosts and managers must be parallel")
	}
	byName := make(map[string]int, len(cfg.Hosts))
	for i, h := range cfg.Hosts {
		if h == nil || cfg.Managers[i] == nil {
			return nil, fmt.Errorf("tree: nil host or manager at %d", i)
		}
		byName[h.Name()] = i
	}
	hosts := make([]*sim.Host, len(names))
	managers := make([]*servermgr.Manager, len(names))
	floors := make([]float64, len(names))
	for i, name := range names {
		j, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("tree: no host supplied for leaf %q", name)
		}
		hosts[i] = cfg.Hosts[j]
		managers[i] = cfg.Managers[j]
		floors[i] = cfg.Hosts[j].Machine().IdlePowerW + 1
	}
	if err := cfg.Tree.ValidateFloors(floors); err != nil {
		return nil, err
	}
	period := cfg.Period
	if period == 0 {
		period = 5 * time.Second
	}
	if period <= 0 {
		return nil, errors.New("tree: period must be positive")
	}
	smoothing, err := pbudget.ResolveSmoothing(cfg.Smoothing)
	if err != nil {
		return nil, err
	}
	marginW, err := pbudget.ResolveMarginW(cfg.MarginW)
	if err != nil {
		return nil, err
	}
	r := &Reallocator{
		tree:       cfg.Tree,
		hosts:      hosts,
		managers:   managers,
		period:     period,
		tracer:     cfg.Tracer,
		est:        pbudget.NewDemandEstimator(len(names), smoothing, marginW),
		lastShares: make([]float64, len(names)),
	}
	if cfg.Obs != nil {
		r.obsLatency = cfg.Obs.Histogram("pocolo_obs_budget_rebalance_seconds",
			"Wall-clock duration of budget-tree rebalances.")
		r.obsHeadroom = make([]*obs.Gauge, len(names))
		for i, name := range names {
			r.obsHeadroom[i] = cfg.Obs.Gauge("pocolo_obs_budget_headroom_watts",
				"Installed budget share minus estimated demand per host.",
				obs.Label{Key: "host", Value: name})
		}
	}
	return r, nil
}

// Attach registers the reallocation loop on the engine and installs an
// initial division.
func (r *Reallocator) Attach(e *sim.Engine) error {
	if e == nil {
		return errors.New("tree: nil engine")
	}
	r.Rebalance(e.Now())
	return e.Every(r.period, r.Rebalance)
}

// Rebalance reads the power meters, updates the demand estimates, and
// re-divides the tree, installing fresh per-server caps and tracing every
// share that moved.
func (r *Reallocator) Rebalance(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.obsLatency != nil {
		start := time.Now()
		defer func() { r.obsLatency.ObserveDuration(time.Since(start)) }()
	}
	n := len(r.hosts)
	demand := make([]float64, n)
	caps := make([]float64, n)
	floors := make([]float64, n)
	for i, h := range r.hosts {
		r.est.Observe(i, h.MeterReading().Watts, h.Machine().IdlePowerW)
		demand[i] = r.est.Demand(i)
		caps[i] = h.CapW()
		floors[i] = h.Machine().IdlePowerW + 1
	}
	shares, err := r.tree.Alloc(demand, caps, floors)
	if err != nil {
		// Shape mismatches are construction-time bugs; leave the installed
		// caps alone rather than guessing.
		return
	}
	for i, mgr := range r.managers {
		_ = mgr.SetCapW(shares[i])
		if r.obsHeadroom != nil {
			r.obsHeadroom[i].Set(shares[i] - demand[i])
		}
		if prev := r.lastShares[i]; abs(shares[i]-prev) > 1e-9 {
			r.tracer.BudgetShift(now, trace.BudgetChange{
				Node:   r.hosts[i].Name(),
				FromW:  prev,
				ToW:    shares[i],
				Reason: "rebalance",
			})
		}
	}
	copy(r.lastShares, shares)
	r.rebalances++
}

// SetBudget mutates a tree node's budget at the given time and traces the
// change; the new bound takes effect at the next rebalance. reason labels
// the trace event ("brownout", "restore", ...).
func (r *Reallocator) SetBudget(now time.Time, node string, watts float64, reason string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.tree.Lookup(node)
	if n == nil {
		return fmt.Errorf("tree: unknown node %q", node)
	}
	from := n.BudgetW
	if err := r.tree.SetBudget(node, watts); err != nil {
		return err
	}
	r.cuts++
	r.lastCutAtReb = r.rebalances
	r.tracer.BudgetCut(now, trace.BudgetChange{
		Node: node, FromW: from, ToW: watts, Reason: reason,
	})
	return nil
}

// Shares returns the most recently installed per-server budgets, in tree
// Hosts() order.
func (r *Reallocator) Shares() []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]float64(nil), r.lastShares...)
}

// Rebalances returns the number of divisions installed so far.
func (r *Reallocator) Rebalances() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rebalances
}

// Cuts returns the number of runtime budget mutations applied.
func (r *Reallocator) Cuts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cuts
}

// Period returns the reallocation interval.
func (r *Reallocator) Period() time.Duration { return r.period }

// Tree returns the underlying hierarchy.
func (r *Reallocator) Tree() *Tree { return r.tree }

// NodeBudgets snapshots every node's current budget by name — the
// invariant.BudgetAuthority view.
func (r *Reallocator) NodeBudgets() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tree.NodeBudgets()
}

// NodeHosts returns the hosts at or beneath the named node.
func (r *Reallocator) NodeHosts(node string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tree.HostsUnder(node)
}

// InGrace reports whether the reallocator is still converging: fewer than
// ConvergencePeriods rebalances have run since the latest budget
// mutation (or since construction). The tree-conservation invariant
// skips its budget-sum assertion during grace — simulated and controller
// clocks share no epoch, so grace is counted in rebalances, not time.
func (r *Reallocator) InGrace() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rebalances < r.lastCutAtReb+ConvergencePeriods
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
