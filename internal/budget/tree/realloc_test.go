package tree

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	pbudget "pocolo/internal/budget"
	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// rig builds hosts named h0..h{n-1} with distinct constant loads, each
// with a co-runner, plus managers and an engine — mirroring the flat
// budget package's test rig so the two stay comparable.
type rig struct {
	hosts    []*sim.Host
	managers []*servermgr.Manager
	engine   *sim.Engine
}

var fittedModels map[string]*utility.Model

func buildRig(t testing.TB, loads []float64) *rig {
	t.Helper()
	cfg := machine.XeonE52650()
	cat := workload.MustDefaults()
	if fittedModels == nil {
		models, err := profiler.FitAll(cfg, append(cat.LC(), cat.BE()...), 42)
		if err != nil {
			t.Fatal(err)
		}
		fittedModels = models
	}
	lcs := cat.LC()
	bes := cat.BE()
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{engine: engine}
	for i, load := range loads {
		lc := lcs[i%len(lcs)]
		tr, err := workload.NewConstantTrace(load)
		if err != nil {
			t.Fatal(err)
		}
		host, err := sim.NewHost(sim.HostConfig{
			Name:    fmt.Sprintf("h%d", i),
			Machine: cfg,
			LC:      lc,
			BE:      bes[i%len(bes)],
			Trace:   tr,
			Seed:    int64(i) * 71,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := engine.AddHost(host); err != nil {
			t.Fatal(err)
		}
		mgr, err := servermgr.New(servermgr.Config{
			Host: host, Model: fittedModels[lc.Name], Policy: servermgr.PowerOptimized,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mgr.Attach(engine); err != nil {
			t.Fatal(err)
		}
		r.hosts = append(r.hosts, host)
		r.managers = append(r.managers, mgr)
	}
	return r
}

func TestNewReallocatorValidation(t *testing.T) {
	r := buildRig(t, []float64{0.3, 0.6})
	tr, err := Parse("dc:300{h0,h1}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for nil tree")
	}
	if _, err := New(Config{Tree: tr, Hosts: r.hosts[:1], Managers: r.managers[:1]}); err == nil {
		t.Error("expected error for missing hosts")
	}
	if _, err := New(Config{Tree: tr, Hosts: r.hosts, Managers: r.managers[:1]}); err == nil {
		t.Error("expected error for mismatched slices")
	}
	if _, err := New(Config{Tree: tr, Hosts: []*sim.Host{nil, nil}, Managers: r.managers}); err == nil {
		t.Error("expected error for nil host")
	}
	wrong, err := Parse("dc:300{h0,nope}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Tree: wrong, Hosts: r.hosts, Managers: r.managers}); err == nil {
		t.Error("expected error for a leaf with no matching host")
	}
	tight, err := Parse("dc:90{h0,h1}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Tree: tight, Hosts: r.hosts, Managers: r.managers}); err == nil {
		t.Error("expected error for a budget below the idle floors")
	}
	if _, err := New(Config{Tree: tr, Hosts: r.hosts, Managers: r.managers, Period: -time.Second}); err == nil {
		t.Error("expected error for negative period")
	}
	if _, err := New(Config{Tree: tr, Hosts: r.hosts, Managers: r.managers, Smoothing: pbudget.Float(-1)}); err == nil {
		t.Error("expected error for bad smoothing")
	}
	if _, err := New(Config{Tree: tr, Hosts: r.hosts, Managers: r.managers, MarginW: pbudget.Float(-1)}); err == nil {
		t.Error("expected error for bad margin")
	}
	re, err := New(Config{Tree: tr, Hosts: r.hosts, Managers: r.managers})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Attach(nil); err == nil {
		t.Error("expected error attaching to nil engine")
	}
	if re.Period() != 5*time.Second {
		t.Errorf("default period = %v", re.Period())
	}
	if re.Tree() != tr {
		t.Error("Tree() accessor broken")
	}
}

// TestDegenerateTreeMatchesFlatBudgeter is the golden contract: a
// one-level tree driven by the Reallocator installs bit-identical shares
// to the flat Budgeter over an identical seeded run.
func TestDegenerateTreeMatchesFlatBudgeter(t *testing.T) {
	loads := []float64{0.1, 0.8, 0.4, 0.6}
	flatRig := buildRig(t, loads)
	treeRig := buildRig(t, loads)
	var total float64
	for _, h := range flatRig.hosts {
		total += h.CapW()
	}
	budgetW := 0.85 * total

	flat, err := pbudget.New(pbudget.Config{
		TotalW: budgetW, Hosts: flatRig.hosts, Managers: flatRig.managers,
		Policy: pbudget.DemandProportional, Period: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Attach(flatRig.engine); err != nil {
		t.Fatal(err)
	}

	spec := fmt.Sprintf("dc:%g{h0,h1,h2,h3}", budgetW)
	tr, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	re, err := New(Config{
		Tree: tr, Hosts: treeRig.hosts, Managers: treeRig.managers,
		Period: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Attach(treeRig.engine); err != nil {
		t.Fatal(err)
	}

	if err := flatRig.engine.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := treeRig.engine.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if flat.Rebalances() != re.Rebalances() {
		t.Fatalf("rebalance counts diverged: flat %d, tree %d", flat.Rebalances(), re.Rebalances())
	}
	if got, want := re.Shares(), flat.Shares(); !reflect.DeepEqual(got, want) {
		t.Errorf("degenerate tree shares %v != flat budgeter shares %v", got, want)
	}
}

func TestReallocatorShiftsTowardDemand(t *testing.T) {
	// h0 is nearly idle, h1 is slammed; under one rack they share 250 W
	// and the busy host must end up with the bigger slice.
	r := buildRig(t, []float64{0.1, 0.9})
	tr, err := Parse("dc:260=rack:250{h0,h1}")
	if err != nil {
		t.Fatal(err)
	}
	re, err := New(Config{Tree: tr, Hosts: r.hosts, Managers: r.managers, Period: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Attach(r.engine); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	shares := re.Shares()
	if shares[1] <= shares[0] {
		t.Errorf("busy host share %v should exceed idle host share %v", shares[1], shares[0])
	}
	// The rack bound (250), not the dc bound (260), is the binding one.
	if sum := shares[0] + shares[1]; sum > 250+1e-6 {
		t.Errorf("shares sum %v exceed the rack budget", sum)
	}
	if re.Rebalances() < 10 {
		t.Errorf("only %d rebalances", re.Rebalances())
	}
}

func TestSetBudgetConvergesAndTraces(t *testing.T) {
	r := buildRig(t, []float64{0.5, 0.3, 0.7, 0.2})
	var total float64
	for _, h := range r.hosts {
		total += h.CapW()
	}
	budgetW := 0.9 * total
	tr, err := Parse(fmt.Sprintf("dc:%g{rack1:%g{h0,h1},rack2:%g{h2,h3}}", budgetW, budgetW/2, budgetW/2))
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New("realloc", 0)
	re, err := New(Config{
		Tree: tr, Hosts: r.hosts, Managers: r.managers,
		Period: 2 * time.Second, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Attach(r.engine); err != nil {
		t.Fatal(err)
	}
	if err := r.engine.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if re.InGrace() {
		t.Error("still in grace after five periods with no cut")
	}

	// Brownout: cut the DC budget 30% mid-run.
	cutW := 0.7 * budgetW
	if err := re.SetBudget(r.engine.Now(), "dc", cutW, "brownout"); err != nil {
		t.Fatal(err)
	}
	if err := re.SetBudget(r.engine.Now(), "nope", 100, "brownout"); err == nil {
		t.Error("expected error cutting an unknown node")
	}
	if !re.InGrace() {
		t.Error("not in grace immediately after a cut")
	}
	if re.Cuts() != 1 {
		t.Errorf("Cuts() = %d", re.Cuts())
	}

	// Within ConvergencePeriods reallocation periods the installed caps
	// must fit inside the new budget.
	if err := r.engine.Run(time.Duration(ConvergencePeriods) * re.Period()); err != nil {
		t.Fatal(err)
	}
	if re.InGrace() {
		t.Error("still in grace after the convergence window")
	}
	var sum float64
	for _, m := range r.managers {
		sum += m.CapW()
	}
	if sum > cutW+1e-6 {
		t.Errorf("installed caps %v did not converge inside the cut budget %v", sum, cutW)
	}

	// The authority view matches the mutated tree.
	if b := re.NodeBudgets()["dc"]; b != cutW {
		t.Errorf("NodeBudgets[dc] = %v, want %v", b, cutW)
	}
	if hosts := re.NodeHosts("rack2"); !reflect.DeepEqual(hosts, []string{"h2", "h3"}) {
		t.Errorf("NodeHosts(rack2) = %v", hosts)
	}

	// The trace carries the cut and at least one shift per host.
	var cuts, shifts int
	for _, ev := range tracer.Events() {
		switch ev.Kind {
		case trace.KindBudgetCut:
			cuts++
			if ev.Budget.Node != "dc" || ev.Budget.ToW != cutW || ev.Budget.Reason != "brownout" {
				t.Errorf("bad cut event: %+v", ev.Budget)
			}
		case trace.KindBudgetShift:
			shifts++
		}
	}
	if cuts != 1 {
		t.Errorf("%d BudgetCut events, want 1", cuts)
	}
	if shifts < len(r.hosts) {
		t.Errorf("only %d BudgetShift events for %d hosts", shifts, len(r.hosts))
	}
}

func BenchmarkBudgetRealloc4(b *testing.B)  { benchRealloc(b, 4) }
func BenchmarkBudgetRealloc64(b *testing.B) { benchRealloc(b, 64) }

// benchRealloc measures one full tree division — demand update plus
// Alloc plus floor pass — over a two-level tree of n hosts, the per-period
// cost a Reallocator pays.
func benchRealloc(b *testing.B, n int) {
	children := make([]*Node, 0, (n+7)/8)
	for i := 0; i < n; i += 8 {
		rack := &Node{Name: fmt.Sprintf("rack%d", i/8), BudgetW: 8 * 180}
		for j := i; j < i+8 && j < n; j++ {
			rack.Children = append(rack.Children, &Node{Name: fmt.Sprintf("h%d", j)})
		}
		children = append(children, rack)
	}
	tr, err := Build(&Node{Name: "dc", BudgetW: float64(n) * 160, Children: children})
	if err != nil {
		b.Fatal(err)
	}
	est := pbudget.NewDemandEstimator(n, pbudget.DefaultSmoothing, pbudget.DefaultMarginW)
	demand := make([]float64, n)
	caps := make([]float64, n)
	floors := make([]float64, n)
	for i := 0; i < n; i++ {
		caps[i] = 200
		floors[i] = 62
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			est.Observe(j, 80+float64((i+j)%40), 61)
			demand[j] = est.Demand(j)
		}
		if _, err := tr.Alloc(demand, caps, floors); err != nil {
			b.Fatal(err)
		}
	}
}
