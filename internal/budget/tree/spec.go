// Package tree implements a hierarchical power-budget tree — host ≤
// rack ≤ row ≤ datacenter — with a periodic reallocator that shifts cap
// headroom down the tree toward the servers that can use it. The flat
// budget.Budgeter divides one number across all servers; real facilities
// (Dynamo-class controllers, the substrate the paper's Section VI builds
// on) enforce nested budgets at every level of the power delivery tree:
// a rack breaker bounds its hosts no matter how much the row has spare.
//
// A Tree is pure structure parsed from a compact spec; the Reallocator
// (realloc.go) drives it inside a simulation, and the controlplane drives
// it over live agents. Both divide each node's budget with the shared
// helpers in the parent budget package, so a degenerate one-level tree
// reproduces the flat Budgeter bit for bit.
package tree

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	pbudget "pocolo/internal/budget"
)

// Limits keeping the parser total on adversarial (fuzzed) input.
const (
	// MaxDepth bounds the nesting of a spec; real power trees are 3-5
	// levels deep.
	MaxDepth = 32
	// MaxNodes bounds the total node count of a spec.
	MaxNodes = 4096
)

// Node is one vertex of the budget tree. Internal nodes carry a budget in
// watts; leaves are hosts (identified by name) whose budget is optional —
// when zero, the host is bounded only by its ancestors and its own
// provisioned capacity.
type Node struct {
	// Name labels the node. Host leaves must match the simulation host
	// (or agent) names; every name in a tree is unique.
	Name string
	// BudgetW is the node's power bound in watts. Required and positive
	// for internal nodes; optional (0 = unbounded) for host leaves.
	BudgetW float64
	// Children are the node's sub-feeds. Empty means the node is a host.
	Children []*Node
}

// Tree is a validated budget hierarchy.
type Tree struct {
	root *Node
	// nodes indexes every node by name.
	nodes map[string]*Node
	// hostIdx maps each host (leaf) name to its index in Hosts() order —
	// the order external demand/cap/floor slices use.
	hostIdx map[string]int
	// hosts lists the leaf names in spec order.
	hosts []string
	// hostsUnder caches, per node name, the indices of the hosts beneath.
	hostsUnder map[string][]int
}

// treeJSON mirrors Node for the JSON spec form.
type treeJSON struct {
	Name     string      `json:"name"`
	Watts    float64     `json:"watts,omitempty"`
	Children []*treeJSON `json:"children,omitempty"`
}

// Parse reads a budget-tree spec in either the compact text form
//
//	dc:1200=row:600{rack:300{h0,h1},rack2:300{h2,h3}}
//
// or, when the input starts with '{', the JSON form
//
//	{"name":"dc","watts":1200,"children":[...]}
//
// Text grammar (whitespace around tokens is ignored):
//
//	node := name [":" watts] [("=" node) | ("{" node ("," node)* "}")]
//
// "=" is sugar for a single-child chain. Leaves are hosts; internal
// nodes require a positive budget. Every name must be unique.
func Parse(spec string) (*Tree, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, errors.New("tree: empty spec")
	}
	var root *Node
	if s[0] == '{' {
		var j treeJSON
		dec := json.NewDecoder(strings.NewReader(s))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&j); err != nil {
			return nil, fmt.Errorf("tree: bad JSON spec: %v", err)
		}
		root = fromJSON(&j)
	} else {
		p := &parser{s: s}
		n, err := p.parseNode(0)
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos != len(p.s) {
			return nil, fmt.Errorf("tree: trailing input at offset %d", p.pos)
		}
		root = n
	}
	return Build(root)
}

func fromJSON(j *treeJSON) *Node {
	n := &Node{Name: j.Name, BudgetW: j.Watts}
	for _, c := range j.Children {
		if c == nil {
			// Keep a placeholder so validation reports it rather than
			// silently dropping the entry.
			n.Children = append(n.Children, &Node{})
			continue
		}
		n.Children = append(n.Children, fromJSON(c))
	}
	return n
}

// Build validates a hand-constructed node hierarchy into a Tree.
func Build(root *Node) (*Tree, error) {
	if root == nil {
		return nil, errors.New("tree: nil root")
	}
	t := &Tree{
		root:       root,
		nodes:      make(map[string]*Node),
		hostIdx:    make(map[string]int),
		hostsUnder: make(map[string][]int),
	}
	if err := t.index(root, 1, map[*Node]bool{}); err != nil {
		return nil, err
	}
	if len(t.hosts) == 0 {
		return nil, errors.New("tree: no hosts")
	}
	if len(root.Children) == 0 {
		return nil, errors.New("tree: root must be an internal node with a budget")
	}
	return t, nil
}

// index walks the hierarchy validating names, budgets, depth, and
// acyclicity, filling the lookup tables.
func (t *Tree) index(n *Node, depth int, onPath map[*Node]bool) error {
	if n == nil {
		return errors.New("tree: nil node")
	}
	if onPath[n] {
		return fmt.Errorf("tree: cycle through node %q", n.Name)
	}
	if depth > MaxDepth {
		return fmt.Errorf("tree: deeper than %d levels", MaxDepth)
	}
	if len(t.nodes) >= MaxNodes {
		return fmt.Errorf("tree: more than %d nodes", MaxNodes)
	}
	if n.Name == "" {
		return errors.New("tree: node with empty name")
	}
	if _, dup := t.nodes[n.Name]; dup {
		return fmt.Errorf("tree: duplicate node name %q", n.Name)
	}
	if math.IsNaN(n.BudgetW) || math.IsInf(n.BudgetW, 0) || n.BudgetW < 0 {
		return fmt.Errorf("tree: node %q budget %g outside physical domain", n.Name, n.BudgetW)
	}
	t.nodes[n.Name] = n
	if len(n.Children) == 0 {
		idx := len(t.hosts)
		t.hosts = append(t.hosts, n.Name)
		t.hostIdx[n.Name] = idx
		t.hostsUnder[n.Name] = []int{idx}
		return nil
	}
	if n.BudgetW <= 0 {
		return fmt.Errorf("tree: internal node %q needs a positive budget", n.Name)
	}
	onPath[n] = true
	var under []int
	for _, c := range n.Children {
		if err := t.index(c, depth+1, onPath); err != nil {
			return err
		}
		under = append(under, t.hostsUnder[c.Name]...)
	}
	delete(onPath, n)
	t.hostsUnder[n.Name] = under
	return nil
}

// parser is a recursive-descent parser for the compact text form.
type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// parseNode parses one `name [":" watts] [("=" node) | ("{" ... "}")]`.
func (p *parser) parseNode(depth int) (*Node, error) {
	if depth > MaxDepth {
		return nil, fmt.Errorf("tree: deeper than %d levels", MaxDepth)
	}
	p.skipSpace()
	name := p.readName()
	if name == "" {
		return nil, fmt.Errorf("tree: expected a node name at offset %d", p.pos)
	}
	n := &Node{Name: name}
	p.skipSpace()
	if p.peek() == ':' {
		p.pos++
		w, err := p.readWatts(name)
		if err != nil {
			return nil, err
		}
		n.BudgetW = w
		p.skipSpace()
	}
	switch p.peek() {
	case '=':
		p.pos++
		child, err := p.parseNode(depth + 1)
		if err != nil {
			return nil, err
		}
		n.Children = []*Node{child}
	case '{':
		p.pos++
		for {
			child, err := p.parseNode(depth + 1)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
			p.skipSpace()
			switch p.peek() {
			case ',':
				p.pos++
				continue
			case '}':
				p.pos++
			default:
				return nil, fmt.Errorf("tree: expected ',' or '}' at offset %d", p.pos)
			}
			break
		}
	}
	return n, nil
}

func (p *parser) peek() byte {
	if p.pos < len(p.s) {
		return p.s[p.pos]
	}
	return 0
}

// readName consumes a run of name characters: letters, digits, and the
// separators '-', '_', '.', '/'.
func (p *parser) readName() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '/' {
			p.pos++
			continue
		}
		break
	}
	return p.s[start:p.pos]
}

// readWatts consumes a float literal after ':'.
func (p *parser) readWatts(node string) (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c >= '0' && c <= '9' || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-' {
			p.pos++
			continue
		}
		break
	}
	lit := p.s[start:p.pos]
	if lit == "" {
		return 0, fmt.Errorf("tree: node %q: expected watts after ':'", node)
	}
	w, err := strconv.ParseFloat(lit, 64)
	if err != nil {
		return 0, fmt.Errorf("tree: node %q: bad watts %q", node, lit)
	}
	return w, nil
}

// Root returns the tree's root node.
func (t *Tree) Root() *Node { return t.root }

// Hosts returns the leaf names in spec order — the order every external
// demand/cap/floor/share slice uses.
func (t *Tree) Hosts() []string { return append([]string(nil), t.hosts...) }

// HostIndex returns the position of host in Hosts() order, or -1.
func (t *Tree) HostIndex(host string) int {
	if i, ok := t.hostIdx[host]; ok {
		return i
	}
	return -1
}

// Lookup returns the named node, or nil.
func (t *Tree) Lookup(name string) *Node { return t.nodes[name] }

// NodeNames returns every node name, sorted.
func (t *Tree) NodeNames() []string {
	names := make([]string, 0, len(t.nodes))
	for name := range t.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NodeBudgets snapshots every node's current budget by name. Host leaves
// with no explicit budget are omitted.
func (t *Tree) NodeBudgets() map[string]float64 {
	out := make(map[string]float64, len(t.nodes))
	for name, n := range t.nodes {
		if n.BudgetW > 0 {
			out[name] = n.BudgetW
		}
	}
	return out
}

// HostsUnder returns the names of the hosts at or beneath the named node,
// in Hosts() order; nil for an unknown node.
func (t *Tree) HostsUnder(name string) []string {
	idxs, ok := t.hostsUnder[name]
	if !ok {
		return nil
	}
	out := make([]string, len(idxs))
	for i, idx := range idxs {
		out[i] = t.hosts[idx]
	}
	return out
}

// SetBudget mutates the named node's budget. The root and internal nodes
// must keep a positive finite budget; host leaves may be set to 0
// (unbounded). It does not rebalance — the reallocator applies the new
// bound on its next period.
func (t *Tree) SetBudget(name string, watts float64) error {
	n := t.nodes[name]
	if n == nil {
		return fmt.Errorf("tree: unknown node %q", name)
	}
	if math.IsNaN(watts) || math.IsInf(watts, 0) || watts < 0 {
		return fmt.Errorf("tree: budget %g outside physical domain", watts)
	}
	if len(n.Children) > 0 && watts <= 0 {
		return fmt.Errorf("tree: internal node %q needs a positive budget", name)
	}
	n.BudgetW = watts
	return nil
}

// ValidateFloors checks that every node's budget can keep the hosts
// beneath it above their idle floors — the same guard budget.New applies
// to the flat total. floors is in Hosts() order.
func (t *Tree) ValidateFloors(floors []float64) error {
	if len(floors) != len(t.hosts) {
		return fmt.Errorf("tree: %d floors for %d hosts", len(floors), len(t.hosts))
	}
	for name, idxs := range t.hostsUnder {
		n := t.nodes[name]
		if n.BudgetW <= 0 {
			continue
		}
		sum := 0.0
		for _, i := range idxs {
			sum += floors[i]
		}
		if n.BudgetW <= sum {
			return fmt.Errorf("tree: node %q budget %v W cannot keep %d hosts above their idle floors (%v W)", name, n.BudgetW, len(idxs), sum)
		}
	}
	return nil
}

// Alloc divides the root budget down the tree. demand, caps, and floors
// are per-host in Hosts() order; the returned shares are too. At every
// internal node the budget is divided demand-proportionally among the
// children (each child's demand, cap, and floor being the sums over the
// hosts beneath it, with the child's own budget clamping its cap), then a
// floor pass keeps every child above its floor. Host leaves receive the
// final shares. The result satisfies, up to float tolerance: shares sum
// to at most the root budget, the shares beneath any node sum to at most
// that node's budget, and no share sits below its floor (budgets
// permitting).
func (t *Tree) Alloc(demand, caps, floors []float64) ([]float64, error) {
	n := len(t.hosts)
	if len(demand) != n || len(caps) != n || len(floors) != n {
		return nil, fmt.Errorf("tree: demand/caps/floors must have %d entries", n)
	}
	shares := make([]float64, n)
	t.alloc(t.root, t.root.BudgetW, demand, caps, floors, shares)
	return shares, nil
}

func (t *Tree) alloc(n *Node, budget float64, demand, caps, floors, shares []float64) {
	if len(n.Children) == 0 {
		i := t.hostIdx[n.Name]
		shares[i] = budget
		return
	}
	k := len(n.Children)
	childDemand := make([]float64, k)
	childCaps := make([]float64, k)
	childFloors := make([]float64, k)
	for ci, c := range n.Children {
		var d, cap, fl float64
		for _, hi := range t.hostsUnder[c.Name] {
			d += demand[hi]
			cap += caps[hi]
			fl += floors[hi]
		}
		if c.BudgetW > 0 && c.BudgetW < cap {
			cap = c.BudgetW
		}
		childDemand[ci] = d
		childCaps[ci] = cap
		childFloors[ci] = fl
	}
	childShares := pbudget.DivideProportional(budget, childDemand, childCaps)
	pbudget.ApplyFloors(childShares, childFloors)
	for ci, c := range n.Children {
		t.alloc(c, childShares[ci], demand, caps, floors, shares)
	}
}

// String renders the tree back in the canonical compact text form:
// children in braces, single children via '=', budgets via
// strconv.FormatFloat(w, 'g', -1, 64).
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.root)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node) {
	b.WriteString(n.Name)
	if n.BudgetW > 0 {
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(n.BudgetW, 'g', -1, 64))
	}
	switch len(n.Children) {
	case 0:
	case 1:
		b.WriteByte('=')
		writeNode(b, n.Children[0])
	default:
		b.WriteByte('{')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			writeNode(b, c)
		}
		b.WriteByte('}')
	}
}
