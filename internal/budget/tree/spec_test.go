package tree

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	pbudget "pocolo/internal/budget"
)

func TestParseText(t *testing.T) {
	tr, err := Parse("dc:1200=row:600{rack1:300{h0,h1},rack2:300{h2,h3}}")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Hosts(), []string{"h0", "h1", "h2", "h3"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Hosts() = %v, want %v", got, want)
	}
	if got := tr.HostsUnder("rack2"); !reflect.DeepEqual(got, []string{"h2", "h3"}) {
		t.Errorf("HostsUnder(rack2) = %v", got)
	}
	if got := tr.HostsUnder("dc"); len(got) != 4 {
		t.Errorf("HostsUnder(dc) = %v", got)
	}
	if tr.HostsUnder("nope") != nil {
		t.Error("HostsUnder on unknown node should be nil")
	}
	budgets := tr.NodeBudgets()
	if budgets["dc"] != 1200 || budgets["row"] != 600 || budgets["rack1"] != 300 {
		t.Errorf("NodeBudgets = %v", budgets)
	}
	if _, ok := budgets["h0"]; ok {
		t.Error("unbudgeted host leaked into NodeBudgets")
	}
	if tr.HostIndex("h2") != 2 || tr.HostIndex("nope") != -1 {
		t.Error("HostIndex broken")
	}
	if tr.Lookup("row") == nil || tr.Lookup("nope") != nil {
		t.Error("Lookup broken")
	}
	names := tr.NodeNames()
	if len(names) != 8 || names[0] != "dc" {
		t.Errorf("NodeNames = %v", names)
	}
}

func TestParseJSON(t *testing.T) {
	tr, err := Parse(`{"name":"dc","watts":1000,"children":[
		{"name":"r1","watts":600,"children":[{"name":"h0"},{"name":"h1","watts":200}]},
		{"name":"r2","watts":600,"children":[{"name":"h2"}]}]}`)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Hosts(); !reflect.DeepEqual(got, []string{"h0", "h1", "h2"}) {
		t.Errorf("Hosts() = %v", got)
	}
	if tr.Lookup("h1").BudgetW != 200 {
		t.Error("host budget lost in JSON parse")
	}
	// The canonical text form round-trips the JSON-built tree too.
	again, err := Parse(tr.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", tr.String(), err)
	}
	if again.String() != tr.String() {
		t.Errorf("roundtrip %q != %q", again.String(), tr.String())
	}
}

func TestStringRoundtrip(t *testing.T) {
	for _, spec := range []string{
		"dc:100{a,b}",
		"dc:1200=row:600{rack1:300{h0,h1},rack2:300{h2,h3}}",
		"dc:1e3{a:10.5,b}",
		" dc : 100 { a , b } ",
	} {
		tr, err := Parse(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		again, err := Parse(tr.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", tr.String(), err)
		}
		if again.String() != tr.String() {
			t.Errorf("roundtrip %q -> %q -> %q", spec, tr.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":                  "",
		"whitespace":             "   ",
		"trailing":               "dc:100{a,b}x",
		"no name":                ":100{a,b}",
		"no watts":               "dc:{a,b}",
		"nan watts":              "dc:NaN{a,b}",
		"overflow watts":         "dc:1e999{a,b}",
		"negative watts":         "dc:-5{a,b}",
		"internal without watts": "dc{a,b}",
		"zero internal":          "dc:0{a,b}",
		"duplicate names":        "dc:100{a,a}",
		"duplicate inner":        "dc:100{dc,b}",
		"unterminated":           "dc:100{a,b",
		"bare host":              "a",
		"dangling equals":        "dc:100=",
		"bad JSON":               "{not json",
		"unknown JSON field":     `{"name":"dc","power":3}`,
		"deep nesting":           strings.Repeat("a", 1) + deepSpec(MaxDepth+2),
	}
	for name, spec := range cases {
		if _, err := Parse(spec); err == nil {
			t.Errorf("%s: Parse(%.40q) unexpectedly succeeded", name, spec)
		}
	}
}

// deepSpec builds n0:W=n1:W=...=leaf deeper than the limit.
func deepSpec(depth int) string {
	var b strings.Builder
	for i := 0; i < depth; i++ {
		if i > 0 {
			b.WriteString("=")
		}
		b.WriteString("n")
		for j := i; j > 0; j /= 10 {
			b.WriteByte(byte('0' + j%10))
		}
		b.WriteString(":100")
	}
	b.WriteString("=leaf")
	return b.String()
}

func TestBuildRejectsCycle(t *testing.T) {
	a := &Node{Name: "a", BudgetW: 100}
	b := &Node{Name: "b", BudgetW: 50}
	a.Children = []*Node{b}
	b.Children = []*Node{a}
	if _, err := Build(a); err == nil {
		t.Error("expected error for a cyclic graph")
	}
	if _, err := Build(nil); err == nil {
		t.Error("expected error for nil root")
	}
	if _, err := Build(&Node{Name: "lonely", BudgetW: 10}); err == nil {
		t.Error("expected error for a root with no children")
	}
	if _, err := Build(&Node{Name: "dc", BudgetW: math.NaN(),
		Children: []*Node{{Name: "h"}}}); err == nil {
		t.Error("expected error for NaN budget")
	}
}

func TestSetBudgetValidation(t *testing.T) {
	tr, err := Parse("dc:1000{r1:400{a,b},r2:400{c}}")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.SetBudget("dc", 700); err != nil {
		t.Error(err)
	}
	if tr.Lookup("dc").BudgetW != 700 {
		t.Error("SetBudget did not stick")
	}
	if err := tr.SetBudget("nope", 100); err == nil {
		t.Error("expected error for unknown node")
	}
	if err := tr.SetBudget("r1", 0); err == nil {
		t.Error("expected error zeroing an internal node")
	}
	if err := tr.SetBudget("dc", math.Inf(1)); err == nil {
		t.Error("expected error for infinite budget")
	}
	if err := tr.SetBudget("a", 0); err != nil {
		t.Errorf("zeroing a host budget should be allowed: %v", err)
	}
}

func TestValidateFloors(t *testing.T) {
	tr, err := Parse("dc:1000{r1:100{a,b},r2:400{c}}")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateFloors([]float64{60, 60, 60}); err == nil {
		t.Error("expected error: r1's 100 W cannot float two 60 W floors")
	}
	if err := tr.ValidateFloors([]float64{40, 40, 40}); err != nil {
		t.Error(err)
	}
	if err := tr.ValidateFloors([]float64{40, 40}); err == nil {
		t.Error("expected error for wrong floor count")
	}
}

// genTree builds a random 2-4 level tree over n hosts with budgets that
// clear the given per-host floor.
func genTree(rng *rand.Rand, n int, floorW float64) *Node {
	hosts := make([]*Node, n)
	for i := range hosts {
		hosts[i] = &Node{Name: "h" + string(rune('a'+i%26)) + string(rune('0'+i/26))}
	}
	level := hosts
	id := 0
	for len(level) > 1 {
		var next []*Node
		for i := 0; i < len(level); {
			fan := 1 + rng.Intn(3)
			if i+fan > len(level) {
				fan = len(level) - i
			}
			group := level[i : i+fan]
			i += fan
			// Budget: enough for the floors beneath plus random headroom.
			var leaves int
			var count func(*Node)
			count = func(nd *Node) {
				if len(nd.Children) == 0 {
					leaves++
					return
				}
				for _, c := range nd.Children {
					count(c)
				}
			}
			for _, g := range group {
				count(g)
			}
			budget := float64(leaves)*(floorW+5) + rng.Float64()*200
			next = append(next, &Node{
				Name:     "n" + string(rune('a'+id%26)) + string(rune('0'+id/26)),
				BudgetW:  budget,
				Children: group,
			})
			id++
		}
		level = next
	}
	root := level[0]
	if len(root.Children) == 0 {
		root = &Node{Name: "root", BudgetW: float64(n)*(floorW+5) + 500, Children: hosts}
	}
	return root
}

func TestAllocProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const floorW = 61
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(12)
		tr, err := Build(genTree(rng, n, floorW))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		demand := make([]float64, n)
		caps := make([]float64, n)
		floors := make([]float64, n)
		for i := range demand {
			demand[i] = floorW + rng.Float64()*120
			caps[i] = 133 + rng.Float64()*100
			floors[i] = floorW
		}
		if err := tr.ValidateFloors(floors); err != nil {
			// The generator can under-budget a node relative to these
			// floors only by bug; surface it.
			t.Fatalf("trial %d: %v", trial, err)
		}
		shares, err := tr.Alloc(demand, caps, floors)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Property 1: conservation at every node — the shares beneath any
		// budgeted node never sum beyond its budget.
		budgets := tr.NodeBudgets()
		for name, budget := range budgets {
			sum := 0.0
			for _, h := range tr.HostsUnder(name) {
				sum += shares[tr.HostIndex(h)]
			}
			if sum > budget+1e-6 {
				t.Errorf("trial %d: node %s: shares %v exceed budget %v", trial, name, sum, budget)
			}
		}
		for i, s := range shares {
			// Property 2: no host below its idle floor.
			if s < floors[i]-1e-9 {
				t.Errorf("trial %d: host %d share %v below floor %v", trial, i, s, floors[i])
			}
			// Property 3: no host above its provisioned cap.
			if s > caps[i]+1e-9 {
				t.Errorf("trial %d: host %d share %v above cap %v", trial, i, s, caps[i])
			}
		}
	}
}

func TestAllocShapeMismatch(t *testing.T) {
	tr, err := Parse("dc:400{a,b}")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Alloc([]float64{1}, []float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched slice lengths")
	}
}

// TestDegenerateTreeMatchesFlatDivision pins the bit-identity contract at
// the arithmetic level: dividing a one-level tree is the same float-op
// sequence as the flat DivideProportional + ApplyFloors.
func TestDegenerateTreeMatchesFlatDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		children := make([]*Node, n)
		names := make([]string, n)
		for i := range children {
			names[i] = "h" + string(rune('0'+i))
			children[i] = &Node{Name: names[i]}
		}
		total := float64(n)*80 + rng.Float64()*300
		tr, err := Build(&Node{Name: "dc", BudgetW: total, Children: children})
		if err != nil {
			t.Fatal(err)
		}
		demand := make([]float64, n)
		caps := make([]float64, n)
		floors := make([]float64, n)
		for i := range demand {
			demand[i] = 50 + rng.Float64()*150
			caps[i] = 120 + rng.Float64()*80
			floors[i] = 62
		}
		got, err := tr.Alloc(demand, caps, floors)
		if err != nil {
			t.Fatal(err)
		}
		want := pbudget.DivideProportional(total, demand, caps)
		pbudget.ApplyFloors(want, floors)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: tree %v != flat %v", trial, got, want)
		}
	}
}

func FuzzParseBudgetTree(f *testing.F) {
	seeds := []string{
		"dc:1200=row:600{rack1:300{h0,h1},rack2:300{h2,h3}}",
		"dc:100{a,b}",
		"dc:100{a,a}",                 // duplicate hosts
		"dc:50{h0,h1,h2}",             // budget below realistic idle floors
		"dc:NaN{a,b}",                 // NaN watts
		"dc:1e999{a,b}",               // overflow watts
		"a=b=c=d=e",                   // unbudgeted chain
		`{"name":"dc","watts":100,"children":[{"name":"a"}]}`,
		`{"name":"dc","children":[{"name":"dc"}]}`, // dup via JSON
		"dc:100{a{b{c{d{e{f}}}}}}",
		deepSpec(MaxDepth + 2), // cycle-depth guard
		"dc:100{", "}", ",", "=", ":", "dc:+-e3{a}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := Parse(spec)
		if err != nil {
			return
		}
		// Every accepted tree must be internally consistent and re-parse
		// to the same canonical form.
		if len(tr.Hosts()) == 0 {
			t.Fatalf("accepted tree with no hosts: %q", spec)
		}
		for name, b := range tr.NodeBudgets() {
			if math.IsNaN(b) || math.IsInf(b, 0) || b <= 0 {
				t.Fatalf("accepted unphysical budget %v on %q", b, name)
			}
		}
		canon := tr.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if again.String() != canon {
			t.Fatalf("roundtrip unstable: %q -> %q -> %q", spec, canon, again.String())
		}
	})
}
