package budget

import (
	"errors"
	"math"
)

// This file holds the pure division arithmetic shared by the flat
// Budgeter and the hierarchical tree reallocator (budget/tree). The tree
// divides every internal node's budget with exactly these functions, so a
// degenerate one-level tree reproduces the flat Budgeter bit for bit.

// Defaults shared by the flat Budgeter and the tree reallocator.
const (
	// DefaultSmoothing is the EWMA coefficient applied to power readings
	// when Config.Smoothing is nil.
	DefaultSmoothing = 0.5
	// DefaultMarginW is the demand headroom added to each server's
	// smoothed draw when Config.MarginW is nil.
	DefaultMarginW = 5.0
)

// Float returns a pointer to v, for filling the optional Config fields
// (Smoothing, MarginW) inline.
func Float(v float64) *float64 { return &v }

// ResolveSmoothing applies the default to a nil Smoothing pointer and
// validates the resolved coefficient.
func ResolveSmoothing(p *float64) (float64, error) {
	s := DefaultSmoothing
	if p != nil {
		s = *p
	}
	if math.IsNaN(s) || s <= 0 || s > 1 {
		return 0, errors.New("budget: smoothing outside (0, 1]")
	}
	return s, nil
}

// ResolveMarginW applies the default to a nil MarginW pointer and
// validates the resolved margin. An explicit zero margin is valid — that
// is the point of the pointer sentinel.
func ResolveMarginW(p *float64) (float64, error) {
	m := DefaultMarginW
	if p != nil {
		m = *p
	}
	if math.IsNaN(m) || math.IsInf(m, 0) || m < 0 {
		return 0, errors.New("budget: margin must be non-negative and finite")
	}
	return m, nil
}

// DivideProportional divides total in proportion to demand, clamping each
// share to caps[i] and redistributing any clamped-off remainder across the
// still-unclamped entries. demand and caps must be the same length; the
// returned shares sum to at most total (exactly total unless every entry
// clamped).
func DivideProportional(total float64, demand, caps []float64) []float64 {
	n := len(demand)
	shares := make([]float64, n)
	active := make([]bool, n)
	for i := range active {
		active[i] = true
	}
	remaining := total
	for iter := 0; iter < n+1; iter++ {
		sum := 0.0
		for i, a := range active {
			if a {
				sum += demand[i]
			}
		}
		if sum <= 0 {
			break
		}
		clamped := false
		for i, a := range active {
			if !a {
				continue
			}
			want := remaining * demand[i] / sum
			if want >= caps[i] {
				shares[i] = caps[i]
				remaining -= caps[i]
				active[i] = false
				clamped = true
			}
		}
		if clamped {
			continue
		}
		for i, a := range active {
			if a {
				shares[i] = remaining * demand[i] / sum
			}
		}
		return shares
	}
	// Everything clamped: shares already set.
	return shares
}

// DivideEqual gives every entry total/n, clamps to caps, and spills the
// clipped excess across unclamped entries so the whole budget stays
// usable.
func DivideEqual(total float64, caps []float64) []float64 {
	n := len(caps)
	shares := make([]float64, n)
	for i := range shares {
		shares[i] = total / float64(n)
	}
	spillOver(shares, caps)
	return shares
}

// spillOver clamps shares to caps and redistributes the clipped excess
// across unclamped entries.
func spillOver(shares, caps []float64) {
	for iter := 0; iter < len(shares); iter++ {
		excess := 0.0
		var openIdx []int
		for i := range shares {
			if shares[i] > caps[i] {
				excess += shares[i] - caps[i]
				shares[i] = caps[i]
			} else if shares[i] < caps[i] {
				openIdx = append(openIdx, i)
			}
		}
		if excess == 0 || len(openIdx) == 0 {
			return
		}
		per := excess / float64(len(openIdx))
		for _, i := range openIdx {
			shares[i] += per
		}
	}
}

// ApplyFloors raises every share below its floor up to the floor and
// drains the needed watts from shares above their floors (in proportion
// to each one's headroom), preserving the sum. It is a no-op when no
// share sits below its floor, so division results without floor pressure
// pass through bit-identical. When the total headroom cannot cover the
// deficit (total below the summed floors, which the constructors reject)
// every share lands on its floor and the sum grows — the same never-
// starve-a-host escape the per-server capper relies on.
func ApplyFloors(shares, floors []float64) {
	deficit := 0.0
	for i := range shares {
		if shares[i] < floors[i] {
			deficit += floors[i] - shares[i]
			shares[i] = floors[i]
		}
	}
	if deficit <= 0 {
		return
	}
	headroom := 0.0
	for i := range shares {
		if h := shares[i] - floors[i]; h > 0 {
			headroom += h
		}
	}
	if headroom <= 0 {
		return
	}
	frac := deficit / headroom
	if frac > 1 {
		frac = 1
	}
	for i := range shares {
		if h := shares[i] - floors[i]; h > 0 {
			shares[i] -= h * frac
		}
	}
}

// DemandEstimator tracks each server's smoothed power draw — the demand
// signal both the flat Budgeter and the tree reallocator divide by. The
// estimate is an EWMA of meter readings, floored at idle (a dark meter
// reads zero), plus a fixed request margin letting throttled servers
// signal appetite beyond their current capped draw.
type DemandEstimator struct {
	smoothing float64
	marginW   float64
	ewmaW     []float64
}

// NewDemandEstimator builds an estimator for n servers with the resolved
// smoothing coefficient and margin.
func NewDemandEstimator(n int, smoothing, marginW float64) *DemandEstimator {
	return &DemandEstimator{smoothing: smoothing, marginW: marginW, ewmaW: make([]float64, n)}
}

// Observe folds one power reading for server i into its EWMA. Readings at
// or below zero are replaced with idleW; the first observation seeds the
// EWMA directly.
func (d *DemandEstimator) Observe(i int, watts, idleW float64) {
	w := watts
	if w <= 0 {
		w = idleW
	}
	if d.ewmaW[i] == 0 {
		d.ewmaW[i] = w
	} else {
		d.ewmaW[i] = d.smoothing*w + (1-d.smoothing)*d.ewmaW[i]
	}
}

// Demand returns server i's current demand: smoothed draw plus margin.
func (d *DemandEstimator) Demand(i int) float64 { return d.ewmaW[i] + d.marginW }
