package pocolo

// The benchmark harness: one testing.B target per paper artifact (Tables
// I–II, Figs. 1–6, 8–15), each regenerating the artifact end to end, plus
// micro-benchmarks for the hot paths (model fitting, demand solutions,
// assignment solvers, the simulation engine). Run with:
//
//	go test -bench=. -benchmem
import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pocolo/internal/assign"
	"pocolo/internal/budget"
	"pocolo/internal/budget/tree"
	"pocolo/internal/experiments"
	"pocolo/internal/latency"
	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/cluster"
	"pocolo/internal/sim"
	"pocolo/internal/sim/des"
	"pocolo/internal/stats"
	"pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

// benchSuite builds a fresh experiment suite (short dwell so evaluation
// benches stay tractable under -bench).
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.NewSuite(42)
	if err != nil {
		b.Fatal(err)
	}
	s.Dwell = 2 * time.Second
	return s
}

func BenchmarkTableI(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := s.TableI(); len(r.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.TableII(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9to11(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig9to11(); err != nil {
			b.Fatal(err)
		}
	}
}

// The evaluation figures build a fresh suite per iteration so the suite's
// own per-policy memo never carries over. These benches therefore report
// the steady-state regeneration cost of each artifact: profiling plus
// model fitting plus cluster sweeps, where repeated identical sweeps are
// served by the process-wide cache in internal/cluster. Run with
// cluster.SetMemo(false) to force every simulation to re-execute.

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).Fig14(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).Fig15(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the hot paths ---

func benchSamples(b *testing.B) []utility.Sample {
	b.Helper()
	cat := workload.MustDefaults()
	spec, err := cat.ByName("sphinx")
	if err != nil {
		b.Fatal(err)
	}
	p, err := profiler.Run(profiler.Config{Spec: spec, Machine: machine.XeonE52650(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return p.Samples
}

func BenchmarkCobbDouglasFit(b *testing.B) {
	samples := benchSamples(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := utility.Fit("sphinx", profiler.ResourceNames, samples); err != nil {
			b.Fatal(err)
		}
	}
}

func benchModel(b *testing.B) *utility.Model {
	b.Helper()
	m, err := utility.Fit("sphinx", profiler.ResourceNames, benchSamples(b))
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkDemandCapped(b *testing.B) {
	m := benchModel(b)
	upper := []float64{11, 18}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.DemandCapped(70, upper); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinPowerAlloc(b *testing.B) {
	m := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MinPowerAlloc(5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegerMinPowerAlloc(b *testing.B) {
	// The server manager's per-second allocation search: a full scan of
	// the 12×20 knob grid.
	m := benchModel(b)
	caps := []int{12, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.IntegerMinPowerAlloc(5, caps); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPlan(b *testing.B) *utility.Plan {
	b.Helper()
	p, err := utility.NewPlan(benchModel(b), []int{12, 20})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkPlannerBuild(b *testing.B) {
	// One-time frontier construction for a 12×20 grid; amortized across
	// every subsequent lookup via the shared plan cache.
	m := benchModel(b)
	caps := []int{12, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := utility.NewPlan(m, caps); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerLookup(b *testing.B) {
	// The planner's replacement for IntegerMinPowerAlloc on the tick path:
	// a cold binary search over the precomputed least-power frontier. Same
	// target as BenchmarkIntegerMinPowerAlloc so the two are a direct
	// speedup comparison; must stay allocation-free.
	p := benchPlan(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, ok := p.MinPower2(5, -1); !ok {
			b.Fatal("target 5 infeasible")
		}
	}
}

func BenchmarkPlannerLookupWarm(b *testing.B) {
	// Warm-start path: the previous tick's frontier cell is re-checked in
	// O(1) before any binary search, the common case under slowly-varying
	// load.
	p := benchPlan(b)
	_, _, cell, ok := p.MinPower2(5, -1)
	if !ok {
		b.Fatal("target 5 infeasible")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, cell, ok = p.MinPower2(5, cell); !ok {
			b.Fatal("target 5 infeasible")
		}
	}
}

func randomMatrix(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64() * 100
		}
	}
	return m
}

func BenchmarkHungarian8x8(b *testing.B) {
	m := randomMatrix(8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assign.Hungarian(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexAssignment4x4(b *testing.B) {
	m := randomMatrix(4, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assign.LP(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscreteEventQueue(b *testing.B) {
	cfg := des.Config{ArrivalRate: 1000, Servers: 4, ServiceRate: 1500, Duration: 10 * time.Second, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := des.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSecond(b *testing.B) {
	// One simulated second (10 ticks) of a colocated host.
	cat := workload.MustDefaults()
	lc, err := cat.ByName("xapian")
	if err != nil {
		b.Fatal(err)
	}
	be, err := cat.ByName("graph")
	if err != nil {
		b.Fatal(err)
	}
	trace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		b.Fatal(err)
	}
	host, err := sim.NewHost(sim.HostConfig{Name: "bench", Machine: machine.XeonE52650(), LC: lc, BE: be, Trace: trace, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	if err := engine.AddHost(host); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := engine.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- decision-tracing overhead ---

// BenchmarkTraceDisabled measures the disabled tracing path: every record
// call on a nil *Tracer must be a nil check and nothing else. The 0
// allocs/op this reports is the observability-off guarantee the bench
// regression gate enforces.
func BenchmarkTraceDisabled(b *testing.B) {
	var tr *trace.Tracer
	now := time.Unix(0, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("control_tick")
		tr.ControlDecision(now, trace.ControlDecision{Tick: i, Load: 0.5, Path: trace.PathPlannerHit, Feasible: true})
		tr.ObserveSlack(0.2)
		sp.End(now)
	}
}

// BenchmarkTraceEnabled is the same record sequence against a live ring —
// the steady-state per-decision cost when tracing is on (the ring wraps,
// so this includes overwrite behavior).
func BenchmarkTraceEnabled(b *testing.B) {
	tr := trace.New("bench", trace.DefaultEvents)
	now := time.Unix(0, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan("control_tick")
		tr.ControlDecision(now, trace.ControlDecision{Tick: i, Load: 0.5, Path: trace.PathPlannerHit, Feasible: true})
		tr.ObserveSlack(0.2)
		sp.End(now)
	}
}

// BenchmarkFig12NoMemo and BenchmarkFig12Traced are the macro overhead
// pair: the same evaluation figure with the sweep memo forced off (a
// traced run always bypasses it), untraced vs fully traced. Their ratio
// is the end-to-end enabled-path overhead the acceptance bar caps at 5%.
func BenchmarkFig12NoMemo(b *testing.B) {
	defer cluster.SetMemo(cluster.SetMemo(false))
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12Traced(b *testing.B) {
	defer cluster.SetMemo(cluster.SetMemo(false))
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		s.Trace = trace.NewSet(trace.DefaultEvents)
		if _, err := s.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hierarchical budget division ---

// benchBudgetRealloc measures one reallocation period over an n-host
// budget tree (8 hosts per rack): the EWMA demand refresh plus the
// hierarchical water-filling division. This is the per-period cost the
// Reallocator pays at every rebalance, so it sits in the bench
// regression gate.
func benchBudgetRealloc(b *testing.B, n int) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "dc:%g{", float64(n)*160)
	for i := 0; i < n; i += 8 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "rack%d:%g{", i/8, 8*180.0)
		for j := i; j < i+8 && j < n; j++ {
			if j > i {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "h%d", j)
		}
		sb.WriteByte('}')
	}
	sb.WriteByte('}')
	tr, err := tree.Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	est := budget.NewDemandEstimator(n, budget.DefaultSmoothing, budget.DefaultMarginW)
	demand := make([]float64, n)
	caps := make([]float64, n)
	floors := make([]float64, n)
	for i := 0; i < n; i++ {
		caps[i] = 200
		floors[i] = 62
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < n; j++ {
			est.Observe(j, 80+float64((i+j)%40), 61)
			demand[j] = est.Demand(j)
		}
		if _, err := tr.Alloc(demand, caps, floors); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBudgetRealloc4(b *testing.B)  { benchBudgetRealloc(b, 4) }
func BenchmarkBudgetRealloc64(b *testing.B) { benchBudgetRealloc(b, 64) }

func BenchmarkHistogramRecord(b *testing.B) {
	h := latency.MustNewHistogram(0.01, 10000, 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Record(float64(i%1000) + 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOLS(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	xs := make([][]float64, 240)
	ys := make([]float64, 240)
	for i := range xs {
		xs[i] = []float64{rng.Float64() * 12, rng.Float64() * 20}
		ys[i] = 3 + 2*xs[i][0] + xs[i][1] + rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.OLS(xs, ys); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks ---

func BenchmarkAblationSolvers(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationSolvers(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSlack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).AblationSlack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationKnobOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).AblationKnobOrder(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMyopic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).AblationMyopic(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProfiling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).AblationProfiling(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).AblationSharing(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOnline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).AblationOnline(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidationDES(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ValidationDES(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationScale(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationScale(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBudget(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AblationBudget(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeedSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchSuite(b).SeedSensitivity(42, 1042); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinPowerAllocBox(b *testing.B) {
	m := benchModel(b)
	bounds := []float64{12, 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MinPowerAllocBox(5, bounds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelSaveLoad(b *testing.B) {
	models, err := profiler.FitAll(machine.XeonE52650(), append(workload.MustDefaults().LC(), workload.MustDefaults().BE()...), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := utility.SaveModels(&buf, models); err != nil {
			b.Fatal(err)
		}
		if _, err := utility.LoadModels(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// --- hyperscale sharded assignment ---

// benchShardedConfig builds an n-host fleet: hosts cycle the catalog's LC
// classes with caps staggered across a few whole-watt steps (so columns
// spread over several memo fingerprints, as a jittered fleet would), jobs
// cycle the BE classes, and every instance shares its class's fitted model.
func benchShardedConfig(b *testing.B, hosts, jobs int) cluster.MatrixConfig {
	b.Helper()
	cat := workload.MustDefaults()
	base, err := profiler.FitAll(machine.XeonE52650(), append(cat.LC(), cat.BE()...), 1)
	if err != nil {
		b.Fatal(err)
	}
	models := make(map[string]*utility.Model, hosts+jobs)
	lcs, bes := cat.LC(), cat.BE()
	lc := make([]*workload.Spec, hosts)
	for i := range lc {
		c := *lcs[i%len(lcs)]
		c.Name = fmt.Sprintf("host-%d", i)
		c.ProvisionedPowerW += float64(i % 5)
		lc[i] = &c
		models[c.Name] = base[lcs[i%len(lcs)].Name]
	}
	be := make([]*workload.Spec, jobs)
	for i := range be {
		c := *bes[i%len(bes)]
		c.Name = fmt.Sprintf("job-%d", i)
		be[i] = &c
		models[c.Name] = base[bes[i%len(bes)].Name]
	}
	return cluster.MatrixConfig{Machine: machine.XeonE52650(), LC: lc, BE: be, Models: models}
}

// benchClusterSolve is the from-scratch cost: pod construction, matrix
// build (through the shared cell memo), and a full solve in every pod.
func benchClusterSolve(b *testing.B, hosts int) {
	cfg := benchShardedConfig(b, hosts, hosts*3/4)
	epoch := time.Unix(0, 0).UTC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh, err := cluster.NewSharded(cfg, cluster.ShardSettings{})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := sh.Solve(nil, epoch); err != nil {
			b.Fatal(err)
		}
	}
}

// benchClusterResolve is the steady-state incremental path the from-scratch
// bench is measured against: one host's power cap flips between two values
// each iteration, Refresh recomputes only that column, and the owning pod
// repairs its matching with a single dual-preserving augmentation while
// every other pod is untouched.
func benchClusterResolve(b *testing.B, hosts int) {
	cfg := benchShardedConfig(b, hosts, hosts*3/4)
	epoch := time.Unix(0, 0).UTC()
	sh, err := cluster.NewSharded(cfg, cluster.ShardSettings{})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := sh.Solve(nil, epoch); err != nil {
		b.Fatal(err)
	}
	target := cfg.LC[len(cfg.LC)/2]
	basecap := target.ProvisionedPowerW
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target.ProvisionedPowerW = basecap - float64(7+i%2)
		if _, err := sh.Refresh(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := sh.Solve(nil, epoch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCluster1k(b *testing.B)         { benchClusterSolve(b, 1024) }
func BenchmarkCluster1kResolve(b *testing.B)  { benchClusterResolve(b, 1024) }
func BenchmarkCluster10k(b *testing.B)        { benchClusterSolve(b, 10240) }
func BenchmarkCluster10kResolve(b *testing.B) { benchClusterResolve(b, 10240) }

func BenchmarkHungarian32x32(b *testing.B) {
	m := randomMatrix(32, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := assign.Hungarian(m); err != nil {
			b.Fatal(err)
		}
	}
}
