// Command pocolo-agent runs one managed server as a network agent: the
// simulated host and its power-optimized manager advance in real time
// (or faster, with -speed) while an HTTP API lets a cluster controller
// assign best-effort work and scrape stats and Prometheus metrics.
//
// Usage:
//
//	pocolo-agent [-name agent-1] [-listen :7001] [-lc xapian] \
//	             [-be graph,lstm] [-trace diurnal] [-level 0.5] \
//	             [-noise 0] [-period 4m] [-speed 1] [-seed 42] \
//	             [-series-cap 4096] [-catalog apps.json] [-pprof :6060] \
//	             [-trace-file decisions.jsonl] [-trace-events 4096] \
//	             [-push http://127.0.0.1:7100] [-push-every 1s] \
//	             [-advertise http://127.0.0.1:7001]
//
// With -push the agent streams binary delta heartbeats to the named
// controller's POST /v1/heartbeat (see pocolo-controller -transport
// stream) instead of waiting to be polled; -advertise must match the URL
// the controller lists this agent under.
//
// Endpoints: POST /v1/assign, GET /v1/stats, GET /v1/healthz,
// GET /metrics, GET /v1/trace (cursor-paginated decision trace).
// SIGINT/SIGTERM shut the agent down gracefully; with -trace-file the
// retained decision trace is dumped as JSONL on shutdown. (-trace
// selects the *load* trace; the decision-trace flags are -trace-file
// and -trace-events.) With -pprof a net/http/pprof debug server is
// exposed on a separate listener (keep it off public interfaces).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on the optional -pprof listener only
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pocolo/internal/controlplane"
	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	dtrace "pocolo/internal/trace"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-agent: ")
	name := flag.String("name", "agent-1", "agent identity, unique across the cluster")
	listen := flag.String("listen", ":7001", "HTTP listen address")
	lcName := flag.String("lc", "xapian", "latency-critical primary (img-dnn, sphinx, xapian, tpcc)")
	beNames := flag.String("be", "graph,lstm", "comma-separated best-effort candidates the controller may assign")
	traceKind := flag.String("trace", "diurnal", "load trace: constant, diurnal, two-peak, sweep, step, flash, or csv:FILE")
	level := flag.Float64("level", 0.5, "load level for the constant trace")
	noise := flag.Float64("noise", 0, "relative load jitter added on top of the trace (e.g. 0.05)")
	period := flag.Duration("period", 4*time.Minute, "period of the periodic traces (diurnal, two-peak, ...)")
	speed := flag.Float64("speed", 1, "simulated seconds per wall-clock second (e.g. 60 runs a minute per second)")
	seriesCap := flag.Int("series-cap", 4096, "telemetry points retained per series (negative for unbounded)")
	catalogPath := flag.String("catalog", "", "load a custom application catalog from this JSON file")
	seed := flag.Int64("seed", 42, "random seed")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	traceFile := flag.String("trace-file", "", "dump the decision trace as JSONL to this file on shutdown")
	traceEvents := flag.Int("trace-events", 0, "decision-trace ring capacity in events (0 = default, negative disables tracing)")
	push := flag.String("push", "", "stream binary delta heartbeats to this controller base URL (e.g. http://127.0.0.1:7100); empty leaves the agent poll-only")
	pushEvery := flag.Duration("push-every", time.Second, "heartbeat push interval under -push")
	advertise := flag.String("advertise", "", "base URL this agent is known by in the controller's -agents list (default http://127.0.0.1<listen>)")
	flag.Parse()

	if err := run(agentOptions{
		name: *name, listen: *listen, lc: *lcName, be: *beNames,
		trace: *traceKind, level: *level, noise: *noise, period: *period,
		speed: *speed, seriesCap: *seriesCap, catalog: *catalogPath, seed: *seed,
		pprofAddr: *pprofAddr, traceFile: *traceFile, traceEvents: *traceEvents,
		push: *push, pushEvery: *pushEvery, advertise: *advertise,
	}); err != nil {
		log.Fatal(err)
	}
}

type agentOptions struct {
	name, listen, lc, be, trace, catalog string
	level, noise, speed                  float64
	period                               time.Duration
	seriesCap                            int
	seed                                 int64
	pprofAddr                            string
	traceFile                            string
	traceEvents                          int
	push                                 string
	pushEvery                            time.Duration
	advertise                            string
}

func run(opts agentOptions) error {
	if opts.speed <= 0 {
		return errors.New("-speed must be positive")
	}
	cfg := machine.XeonE52650()
	cat, err := loadCatalog(opts.catalog, cfg)
	if err != nil {
		return err
	}
	lc, err := cat.ByName(opts.lc)
	if err != nil {
		return err
	}
	if lc.Class != workload.LatencyCritical {
		return fmt.Errorf("%s is not a latency-critical application", opts.lc)
	}
	var bes []*workload.Spec
	if opts.be != "" {
		for _, n := range strings.Split(opts.be, ",") {
			be, err := cat.ByName(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			bes = append(bes, be)
		}
	}

	loadTrace, err := buildTrace(opts.trace, opts.level, opts.period)
	if err != nil {
		return err
	}
	if opts.noise > 0 {
		loadTrace, err = workload.NewNoisyTrace(loadTrace, opts.noise, time.Second, opts.seed)
		if err != nil {
			return err
		}
	}

	log.Printf("profiling %s and %d best-effort candidates", lc.Name, len(bes))
	lcModel, err := profiler.ProfileAndFit(profiler.Config{Spec: lc, Machine: cfg, Seed: opts.seed})
	if err != nil {
		return err
	}
	beModels := make(map[string]*utility.Model, len(bes))
	for i, be := range bes {
		m, err := profiler.ProfileAndFit(profiler.Config{Spec: be, Machine: cfg, Seed: opts.seed + int64(i)*101})
		if err != nil {
			return err
		}
		beModels[be.Name] = m
	}

	simTick := 100 * time.Millisecond
	agent, err := controlplane.NewAgent(controlplane.AgentConfig{
		Name:         opts.name,
		Machine:      cfg,
		LC:           lc,
		LCModel:      lcModel,
		BECandidates: bes,
		BEModels:     beModels,
		Trace:        loadTrace,
		SimTick:      simTick,
		RealTick:     time.Duration(float64(simTick) / opts.speed),
		SeriesCap:    opts.seriesCap,
		Seed:         opts.seed,
		TraceEvents:  opts.traceEvents,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if opts.pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux, which the agent's API server never serves — so the
		// profiling endpoints only exist on this dedicated listener.
		go func() {
			log.Printf("pprof listening on %s", opts.pprofAddr)
			if err := http.ListenAndServe(opts.pprofAddr, nil); err != nil {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	agent.Start()
	defer agent.Stop()
	if opts.push != "" {
		adv := opts.advertise
		if adv == "" {
			// A bare ":port" listen address binds every interface; advertise
			// the loopback form the controller's -agents list would use.
			if strings.HasPrefix(opts.listen, ":") {
				adv = "http://127.0.0.1" + opts.listen
			} else {
				adv = "http://" + opts.listen
			}
		}
		every := opts.pushEvery
		if every <= 0 {
			every = time.Second
		}
		go streamHeartbeats(ctx, agent, opts.name, adv, opts.push, every)
		log.Printf("streaming heartbeats to %s every %s (advertised as %s)", opts.push, every, adv)
	}
	srv := &http.Server{Addr: opts.listen, Handler: agent.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("agent %s serving %s on %s (lc=%s, candidates=%s, %gx real time)",
		opts.name, opts.trace, opts.listen, lc.Name, opts.be, opts.speed)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	agent.Stop()
	st := agent.Stats()
	log.Printf("stopped after %.0f simulated seconds: lc_ops=%.0f be_ops=%.0f", st.SimSec, st.LCOps, st.BEOps)
	if opts.traceFile != "" {
		if err := dumpDecisionTrace(opts.traceFile, agent.Tracer()); err != nil {
			return fmt.Errorf("-trace-file: %w", err)
		}
	}
	return nil
}

// streamHeartbeats pushes the agent's state to the controller every
// interval as a binary heartbeat frame: a full snapshot until the first
// ack lands, compact deltas after. A transport error or a resync ack
// drops back to a full frame, so the loop self-heals across controller
// restarts; frames are best-effort and a lost one just widens the next
// delta.
func streamHeartbeats(ctx context.Context, agent *controlplane.Agent, name, advertise, controller string, every time.Duration) {
	enc := controlplane.NewHeartbeatEncoder(name, advertise)
	client := &http.Client{Timeout: every}
	endpoint := strings.TrimSuffix(controller, "/") + controlplane.RouteHeartbeat
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		stats, epoch := agent.StatsEpoch()
		frame, err := enc.Encode(stats, epoch)
		if err != nil {
			log.Printf("heartbeat encode: %v", err)
			continue
		}
		ack, err := postHeartbeatFrame(ctx, client, endpoint, frame)
		if err != nil {
			enc.Resync()
			log.Printf("heartbeat push: %v", err)
			continue
		}
		enc.Ack(ack)
	}
}

// postHeartbeatFrame POSTs one frame and decodes the controller's ack.
func postHeartbeatFrame(ctx context.Context, client *http.Client, endpoint string, frame []byte) (controlplane.HeartbeatAck, error) {
	var ack controlplane.HeartbeatAck
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(frame))
	if err != nil {
		return ack, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := client.Do(req)
	if err != nil {
		return ack, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return ack, fmt.Errorf("decoding heartbeat ack: %w", err)
	}
	return ack, nil
}

// dumpDecisionTrace writes the agent's retained decision trace as JSONL
// (full wire form, wall-clock timestamps included — a live agent's trace
// is not a deterministic replay artifact).
func dumpDecisionTrace(path string, tr *dtrace.Tracer) error {
	if tr == nil {
		return errors.New("decision tracing is disabled (-trace-events is negative)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	events := tr.Events()
	if err := dtrace.WriteJSONL(f, events, true); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("wrote %d decision-trace events to %s (%d dropped)", len(events), path, tr.Dropped())
	return nil
}

// loadCatalog opens the application catalog (defaults when path is empty).
func loadCatalog(path string, cfg machine.Config) (*workload.Catalog, error) {
	if path == "" {
		return workload.Defaults(cfg)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return workload.LoadCatalog(f, cfg)
}

// buildTrace constructs the requested load trace; periodic traces repeat
// with the given period.
func buildTrace(kind string, level float64, period time.Duration) (workload.Trace, error) {
	switch {
	case kind == "constant":
		return workload.NewConstantTrace(level)
	case kind == "diurnal":
		return workload.NewDiurnalTrace(0.1, 0.9, period)
	case kind == "two-peak":
		return workload.NewTwoPeakTrace(0.1, 0.5, 0.9, period)
	case kind == "sweep":
		return workload.UniformSweep(period / 9), nil
	case kind == "step":
		return workload.NewStepTrace(0.5, 0.8, period/2, period)
	case kind == "flash":
		return workload.NewFlashCrowdTrace(0.2, 0.9, period/3, period/6, period)
	case strings.HasPrefix(kind, "csv:"):
		path := strings.TrimPrefix(kind, "csv:")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ParseCSVTrace(path, f)
	default:
		return nil, fmt.Errorf("unknown trace %q", kind)
	}
}
