// Command pocolo-top renders a live terminal view of a pocolo fleet: one
// row per pod with solve-latency quantiles, heartbeat staleness
// watermarks, budget headroom, and cap violations, plus the controller's
// round-latency and SLO-burn summary. It reads the controller's
// GET /v1/top rollup, so it works identically against either transport.
//
// Usage:
//
//	pocolo-top -addr http://127.0.0.1:7100           # watch a live controller
//	pocolo-top -demo 256                             # in-process demo fleet
//	pocolo-top -demo 1000 -once -json                # headless snapshot (CI)
//
// With -addr the view polls a running pocolo-controller every -interval.
// With -demo N it builds the in-process stream-demo cluster (see
// pocolo-sim -stream-demo) with an observability registry wired, drives
// the campaign in the background, and renders the controller's rollup as
// the rounds execute. -once renders a single snapshot and exits — under
// -demo it waits for the campaign to finish first, so the snapshot
// covers every round; -json emits the raw TopSnapshot instead of the
// table, for scripting and CI smoke tests.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"pocolo/internal/controlplane"
	"pocolo/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-top: ")
	addr := flag.String("addr", "", "controller base URL to poll (GET /v1/top)")
	interval := flag.Duration("interval", time.Second, "refresh period")
	once := flag.Bool("once", false, "render one snapshot and exit (with -demo: after the campaign finishes)")
	asJSON := flag.Bool("json", false, "emit the raw TopSnapshot JSON instead of the table")
	demo := flag.Int("demo", 0, "run the in-process stream demo over this many agents instead of polling -addr")
	transport := flag.String("transport", controlplane.TransportStream, "demo transport: stream or poll")
	podSize := flag.Int("pod-size", 0, "demo shard/pod size (0 = default)")
	rounds := flag.Int("rounds", 0, "demo controller rounds (0 = default)")
	seed := flag.Int64("seed", 1, "demo seed")
	flag.Parse()

	var err error
	switch {
	case *demo > 0:
		err = runDemo(*demo, *transport, *podSize, *rounds, *seed, *interval, *once, *asJSON)
	case *addr != "":
		err = runPoll(*addr, *interval, *once, *asJSON)
	default:
		err = fmt.Errorf("need -addr or -demo (see -help)")
	}
	if err != nil {
		log.Fatal(err)
	}
}

// runDemo builds the demo campaign with an observability registry, runs
// it in the background, and renders the live controller's rollup.
func runDemo(agents int, transport string, podSize, rounds int, seed int64, interval time.Duration, once, asJSON bool) error {
	camp, err := controlplane.NewStreamDemo(controlplane.StreamDemoConfig{
		Agents:    agents,
		Transport: transport,
		PodSize:   podSize,
		Rounds:    rounds,
		Seed:      seed,
		Obs:       obs.NewRegistry(),
	})
	if err != nil {
		return err
	}
	ctl := camp.Controller()

	done := make(chan error, 1)
	go func() {
		report, err := camp.Run(context.Background())
		if err == nil {
			err = report.Err()
		}
		done <- err
	}()

	if once {
		// Headless mode: one snapshot covering the whole campaign.
		if err := <-done; err != nil {
			return err
		}
		return render(os.Stdout, ctl.Top(), asJSON, false)
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case err := <-done:
			if rerr := render(os.Stdout, ctl.Top(), asJSON, false); rerr != nil {
				return rerr
			}
			return err
		case <-tick.C:
			if err := render(os.Stdout, ctl.Top(), asJSON, !asJSON); err != nil {
				return err
			}
		}
	}
}

// runPoll watches a running controller over HTTP.
func runPoll(addr string, interval time.Duration, once, asJSON bool) error {
	client := &http.Client{Timeout: 10 * time.Second}
	for {
		top, err := fetchTop(client, addr)
		if err != nil {
			return err
		}
		if err := render(os.Stdout, top, asJSON, !once && !asJSON); err != nil {
			return err
		}
		if once {
			return nil
		}
		time.Sleep(interval)
	}
}

func fetchTop(client *http.Client, addr string) (controlplane.TopSnapshot, error) {
	var top controlplane.TopSnapshot
	resp, err := client.Get(addr + controlplane.RouteTop)
	if err != nil {
		return top, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return top, fmt.Errorf("GET %s%s: %s: %s", addr, controlplane.RouteTop, resp.Status, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&top); err != nil {
		return top, fmt.Errorf("decoding top snapshot: %w", err)
	}
	return top, nil
}

// render writes one snapshot; clear prefixes the ANSI home-and-clear
// sequence for the live full-screen refresh.
func render(w io.Writer, top controlplane.TopSnapshot, asJSON, clear bool) error {
	if asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(top)
	}
	if clear {
		fmt.Fprint(w, "\x1b[H\x1b[2J")
	}
	fmt.Fprintf(w, "pocolo-top  transport=%s  rounds=%d  solves=%d  deaths=%d  degraded=%t\n",
		top.Transport, top.Rounds, top.Solves, top.Deaths, top.Degraded)
	fmt.Fprintf(w, "round p50=%.2fms p99=%.2fms   slo-burn round=%.2f stale=%.2f\n\n",
		top.RoundP50Ms, top.RoundP99Ms, top.RoundBurn, top.StaleBurn)
	fmt.Fprintf(w, "%-8s %7s %6s %9s %9s %9s %8s %8s %12s %5s\n",
		"POD", "AGENTS", "ALIVE", "STALE(s)", "P50(ms)", "P99(ms)", "DIRTY", "ROUNDS", "HEADROOM(W)", "VIOL")
	for _, p := range top.Pods {
		fmt.Fprintf(w, "%-8s %7d %6d %9.2f %9.2f %9.2f %8d %8d %12.1f %5d\n",
			p.Pod, p.Agents, p.Alive, p.StalenessS, p.SolveP50Ms, p.SolveP99Ms,
			p.BatchDirty, p.BatchRounds, p.HeadroomW, p.Violations)
	}
	return nil
}
