// Command pocolo-controller runs the cluster-level half of the control
// plane: it heartbeats a static set of pocolo-agent endpoints, rebuilds
// the best-effort x server performance matrix from their reported stats
// and models, solves the assignment, and pushes placements. Agents that
// miss K consecutive heartbeats are declared dead and their best-effort
// work migrates to the survivors; recovered agents rejoin automatically.
//
// Usage:
//
//	pocolo-controller -agents http://127.0.0.1:7001,http://127.0.0.1:7002 \
//	                  [-be graph,lstm] [-listen :7100] [-heartbeat 1s] \
//	                  [-timeout 500ms] [-dead-after 3] [-retries 1] \
//	                  [-max-backoff 16s] [-jitter 0.2] [-solver lp] \
//	                  [-resolve-every 30s] [-seed 42] \
//	                  [-budget-tree 'dc:600{agent-a,agent-b}'] \
//	                  [-trace cluster.jsonl] [-trace-events 4096] \
//	                  [-transport stream] [-pod-size 64]
//
// With -transport stream the controller stops scraping GET /v1/stats and
// instead accepts binary delta heartbeats pushed by the agents to
// POST /v1/heartbeat (run pocolo-agent with -push pointed here). Agent
// state lands in per-pod shards sized by -pod-size and the round loop
// reads immutable snapshots without blocking ingest; see DESIGN.md §14.
//
// With -budget-tree the controller enforces a hierarchical power budget
// over the fleet: the tree's leaves name the agents, every heartbeat
// round re-divides each node's budget over the agents' reported power
// draw, and the per-agent shares are pushed as power caps over
// POST /v1/cap (see DESIGN.md §12). A spec starting with '@' is read
// from the named file.
//
// With -listen set, the controller serves its own GET /v1/status (JSON),
// GET /metrics (Prometheus), and GET /v1/trace — the cluster-wide
// decision timeline, aggregated from every live agent's /v1/trace pages
// merged with the controller's own placement/migration/degradation/solve
// events. With -trace the merged timeline is also dumped as JSONL on
// shutdown. SIGINT/SIGTERM shut it down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pocolo/internal/controlplane"
	"pocolo/internal/obs"
	"pocolo/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-controller: ")
	agents := flag.String("agents", "", "comma-separated agent base URLs (required)")
	be := flag.String("be", "graph,lstm", "comma-separated best-effort apps to keep placed")
	listen := flag.String("listen", ":7100", "HTTP listen address for /v1/status and /metrics (empty to disable)")
	heartbeat := flag.Duration("heartbeat", time.Second, "agent poll interval")
	timeout := flag.Duration("timeout", 0, "per-request timeout (default heartbeat/2)")
	deadAfter := flag.Int("dead-after", 3, "consecutive missed heartbeats before an agent is declared dead")
	retries := flag.Int("retries", 1, "probe retries within one round")
	maxBackoff := flag.Duration("max-backoff", 0, "probe backoff cap for dead agents (default 16x heartbeat)")
	jitter := flag.Float64("jitter", 0.2, "relative heartbeat jitter in [0, 1)")
	solver := flag.String("solver", "lp", "assignment solver: lp, hungarian, or exhaustive")
	resolveEvery := flag.Duration("resolve-every", 30*time.Second, "periodic re-solve interval (0 to re-solve only on membership changes)")
	seed := flag.Int64("seed", 42, "random seed for the heartbeat jitter")
	budgetTree := flag.String("budget-tree", "", "hierarchical power-budget tree whose leaves name the agents (e.g. 'dc:600{agent-a,agent-b}') or @file; shares are pushed as caps every round")
	transport := flag.String("transport", controlplane.TransportPoll, "state transport: poll (controller scrapes GET /v1/stats each round) or stream (agents push binary delta heartbeats to POST /v1/heartbeat; requires -listen)")
	podSize := flag.Int("pod-size", 0, "agents per state shard under -transport stream (0 = default)")
	tracePath := flag.String("trace", "", "dump the aggregated cluster decision trace as JSONL to this file on shutdown")
	traceEvents := flag.Int("trace-events", 0, "controller decision-trace ring capacity in events (0 = default, negative disables tracing)")
	noObs := flag.Bool("no-obs", false, "disable the observability plane (round/solve/ingest histograms, SLO burn, /v1/top rollup)")
	roundDeadline := flag.Duration("round-deadline", 0, "round-latency SLO target (default heartbeat)")
	flightDir := flag.String("flight-dir", "", "arm the flight recorder: rounds past -round-deadline capture a bundle directory here")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceEvents >= 0 {
		n := *traceEvents
		if n == 0 {
			n = trace.DefaultEvents
		}
		tracer = trace.New("controller", n)
	}

	spec := *budgetTree
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			log.Fatal(err)
		}
		spec = strings.TrimSpace(string(raw))
	}

	var reg *obs.Registry
	if !*noObs {
		reg = obs.NewRegistry()
	}
	var recorder *obs.FlightRecorder
	if *flightDir != "" {
		recorder = obs.NewRecorder(obs.RecorderConfig{Dir: *flightDir})
	}

	if err := run(*agents, *be, *listen, *tracePath, controlplane.ControllerConfig{
		Trace:         tracer,
		Obs:           reg,
		RoundDeadline: *roundDeadline,
		Recorder:      recorder,
		BudgetTree:    spec,
		Heartbeat:     *heartbeat,
		Timeout:       *timeout,
		DeadAfter:     *deadAfter,
		Retries:       *retries,
		MaxBackoff:    *maxBackoff,
		Jitter:        *jitter,
		Solver:        *solver,
		ResolveEvery:  *resolveEvery,
		Seed:          *seed,
		Transport:     *transport,
		PodSize:       *podSize,
		Logf:          log.Printf,
	}); err != nil {
		log.Fatal(err)
	}
}

func run(agents, be, listen, tracePath string, cfg controlplane.ControllerConfig) error {
	if agents == "" {
		return errors.New("-agents is required (comma-separated base URLs)")
	}
	for _, u := range strings.Split(agents, ",") {
		cfg.AgentURLs = append(cfg.AgentURLs, strings.TrimSpace(u))
	}
	if be != "" {
		for _, n := range strings.Split(be, ",") {
			cfg.BE = append(cfg.BE, strings.TrimSpace(n))
		}
	}
	if cfg.Transport == controlplane.TransportStream && listen == "" {
		return errors.New("-transport stream needs -listen (agents push heartbeats to POST /v1/heartbeat)")
	}
	ctl, err := controlplane.NewController(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var srv *http.Server
	httpErr := make(chan error, 1)
	if listen != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/v1/status", ctl.StatusHandler)
		mux.HandleFunc("/metrics", ctl.MetricsHandler)
		mux.HandleFunc(controlplane.RouteTrace, ctl.TraceHandler)
		mux.HandleFunc(controlplane.RouteTop, ctl.TopHandler)
		if cfg.Transport == controlplane.TransportStream {
			mux.HandleFunc(controlplane.RouteHeartbeat, ctl.HeartbeatHandler)
		}
		srv = &http.Server{Addr: listen, Handler: mux}
		go func() { httpErr <- srv.ListenAndServe() }()
		log.Printf("status endpoint on %s", listen)
	}
	log.Printf("controlling %d agents, placing %v", len(cfg.AgentURLs), cfg.BE)

	runErr := make(chan error, 1)
	go func() { runErr <- ctl.Run(ctx) }()

	select {
	case err := <-httpErr:
		return err
	case err := <-runErr:
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	log.Printf("signal received, shutting down")
	if srv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
	}
	st := ctl.Status()
	log.Printf("stopped after %d rounds: %d solves, %d deaths, %d rejoins", st.Rounds, st.Solves, st.Deaths, st.Rejoins)
	if tracePath != "" {
		// Final collection sweeps any agent events recorded since the last
		// round; dead agents are skipped, so this bounds shutdown latency.
		collectCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		events := ctl.CollectTrace(collectCtx)
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteJSONL(f, events, true); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("wrote %d decision-trace events to %s", len(events), tracePath)
	}
	return nil
}
