package main

import "testing"

func TestParseJobs(t *testing.T) {
	jobs, err := parseJobs("lstm:2000, rnn:600 ,graph:400")
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 {
		t.Fatalf("jobs = %v", jobs)
	}
	if jobs[0].App != "lstm" || jobs[0].SizeOps != 2000 {
		t.Errorf("first job = %+v", jobs[0])
	}
	if jobs[1].App != "rnn" || jobs[2].App != "graph" {
		t.Errorf("jobs = %v", jobs)
	}
	// Trailing commas tolerated.
	jobs, err = parseJobs("lstm:10,")
	if err != nil || len(jobs) != 1 {
		t.Errorf("trailing comma: %v, %v", jobs, err)
	}
	for _, bad := range []string{"", "lstm", "lstm:abc", "lstm:0", "lstm:-5", ","} {
		if _, err := parseJobs(bad); err == nil {
			t.Errorf("parseJobs(%q): expected error", bad)
		}
	}
}
