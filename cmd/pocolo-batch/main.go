// Command pocolo-batch time-shares a batch of finite best-effort jobs over
// one latency-critical server's spare resources (the paper's Section V-G
// extension) and prints the schedule outcome.
//
// Usage:
//
//	pocolo-batch [-lc xapian] [-jobs lstm:2000,rnn:600,graph:400] \
//	             [-policy sjf] [-quantum 5s] [-level 0.3] [-max 10m]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-batch: ")
	lc := flag.String("lc", "xapian", "latency-critical primary")
	jobsFlag := flag.String("jobs", "lstm:2000,rnn:600,graph:400", "comma-separated app:size-ops jobs")
	policyName := flag.String("policy", "sjf", "time-sharing discipline: fcfs, sjf, or rr")
	quantum := flag.Duration("quantum", 5*time.Second, "round-robin time slice")
	level := flag.Float64("level", 0.3, "constant load level of the primary")
	maxSim := flag.Duration("max", 10*time.Minute, "simulation budget")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	jobs, err := parseJobs(*jobsFlag)
	if err != nil {
		log.Fatal(err)
	}
	var policy pocolo.BatchPolicy
	switch *policyName {
	case "fcfs":
		policy = pocolo.FCFS
	case "sjf":
		policy = pocolo.SJF
	case "rr":
		policy = pocolo.RR
	default:
		log.Fatalf("unknown policy %q (want fcfs, sjf, or rr)", *policyName)
	}

	sys, err := pocolo.NewSystem(*seed)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := pocolo.ConstantTrace(*level)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunBatch(*lc, trace, policy, *quantum, jobs, *maxSim)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d jobs on %s (%s, %.0f%% primary load)\n", len(jobs), *lc, policy, *level*100)
	for _, c := range res.Completions {
		fmt.Printf("  %-8s finished at %-9s (%.0f ops)\n", c.App, c.At.Truncate(100*time.Millisecond), c.SizeOps)
	}
	if !res.Done {
		fmt.Printf("  INCOMPLETE after %v; progress: %v\n", *maxSim, res.Progress)
	}
	fmt.Printf("makespan %v, mean flow time %v\n",
		res.Makespan.Truncate(100*time.Millisecond), res.MeanFlowTime.Truncate(100*time.Millisecond))
	fmt.Printf("server: power util %.0f%%, SLO violations %.2f%%\n",
		res.Host.PowerUtil*100, res.Host.SLOViolFrac*100)
}

// parseJobs parses "app:ops,app:ops" into batch jobs.
func parseJobs(s string) ([]pocolo.BatchJob, error) {
	var jobs []pocolo.BatchJob
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		app, sizeStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("job %q: want app:size-ops", part)
		}
		size, err := strconv.ParseFloat(sizeStr, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("job %q: bad size %q", part, sizeStr)
		}
		jobs = append(jobs, pocolo.BatchJob{App: strings.TrimSpace(app), SizeOps: size})
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("no jobs in %q", s)
	}
	return jobs, nil
}
