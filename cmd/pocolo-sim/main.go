// Command pocolo-sim runs the four-server cluster simulation under one of
// the paper's policies (random, pom, pocolo) across the uniform 10–90%
// load sweep and prints per-server and cluster-level metrics.
//
// Usage:
//
//	pocolo-sim [-policy pocolo] [-seed 42] [-dwell 5s] [-parallel N] [-models models.json] [-invariants] [-planner on|off] \
//	           [-trace out.jsonl] [-trace-chrome out.json] [-trace-events N] \
//	           [-budget W] [-budget-policy equal|demand] [-budget-tree spec|@file] [-budget-period 5s] \
//	           [-brownout 0.3] [-brownout-at 10s] [-brownout-node dc]
//
// With -budget the run divides a flat cluster power budget across the
// servers every rebalance period; -budget-tree instead enforces a
// hierarchical budget tree (host ≤ rack ≤ row ≤ DC) whose leaves name
// the LC servers, and -brownout cuts a tree node's budget mid-run to
// exercise graceful degradation.
//
// With -trace the run records every control-loop decision, capper
// intervention, placement, and solve into per-host rings and writes the
// merged timeline as canonical JSONL (wall-clock fields stripped, so two
// seeded runs produce byte-identical files). -trace-chrome writes the
// same timeline in Chrome trace-event format; open it in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"pocolo"
	"pocolo/internal/controlplane"
	"pocolo/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-sim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags in, report out.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pocolo-sim", flag.ContinueOnError)
	policyName := fs.String("policy", "pocolo", "cluster policy: random, pom, or pocolo")
	seed := fs.Int64("seed", 42, "random seed")
	dwell := fs.Duration("dwell", 5*time.Second, "simulated time per load level")
	par := fs.Int("parallel", 0, "worker pool size for independent hosts and trials (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
	modelsPath := fs.String("models", "", "load fitted models from this JSON file (see pocolo-profile -o) instead of re-profiling")
	invariants := fs.Bool("invariants", false, "check cross-layer invariants (resource conservation, power-cap compliance, slack recovery, physical sanity) on every simulated tick; any violation aborts the run")
	planner := fs.String("planner", "on", "precomputed allocation planner: on (O(log n) frontier lookups) or off (exact per-tick grid search); results are bit-identical either way")
	tracePath := fs.String("trace", "", "write the decision trace as canonical JSONL to this file")
	traceChrome := fs.String("trace-chrome", "", "write the decision trace in Chrome trace-event format (Perfetto-loadable) to this file")
	traceEvents := fs.Int("trace-events", trace.DefaultEvents, "decision-trace ring capacity per host, in events")
	budgetW := fs.Float64("budget", 0, "flat cluster power budget in watts (0 = unbudgeted); divided across servers every rebalance period")
	budgetPolicy := fs.String("budget-policy", "equal", "flat budget division rule: equal or demand")
	budgetTree := fs.String("budget-tree", "", "hierarchical budget-tree spec (e.g. 'dc:1200{rack1:600{img-dnn,sphinx},rack2:600{xapian,tpcc}}') or @file; leaves name the LC servers; overrides -budget")
	budgetPeriod := fs.Duration("budget-period", 5*time.Second, "budget rebalance interval")
	brownout := fs.Float64("brownout", 0, "cut the brownout node's budget by this fraction mid-run (0.3 = -30%; needs -budget-tree)")
	brownoutAt := fs.Duration("brownout-at", 0, "simulated time of the brownout cut (default: halfway through the run)")
	brownoutNode := fs.String("brownout-node", "", "tree node to cut (default: the root)")
	hyper := fs.Int("hyperscale", 0, "run the hyperscale diurnal scenario over this many hosts instead of the four-server simulation (e.g. 10000); hosts cycle the catalog's LC classes with jittered power caps")
	hyperJobs := fs.Int("hyperscale-jobs", 0, "BE job instances in the hyperscale fleet (default: 3/4 of the hosts)")
	podSize := fs.Int("pod-size", 0, "hosts per assignment pod in the hyperscale scenario (default 64)")
	hyperRounds := fs.Int("hyperscale-rounds", 3, "churn rounds after the initial hyperscale solve")
	batchThreshold := fs.Int("batch-threshold", 0, "dirty-line count at which a pod refresh switches to the parallel auction batch re-solve (0 = solver default, 1 forces sequential per-line repair); the placement is identical either way")
	churn := fs.Float64("churn", 0.1, "per-round fraction of hosts whose caps drift (and per-class model re-fit probability)")
	rebalanceGap := fs.Float64("rebalance-gap", 0, "minimum estimated gain before a job migrates across pods")
	hyperBudget := fs.Float64("hyperscale-budget", 0, "size a per-pod power-budget tree at this fraction of provisioned capacity (0 = none)")
	streamDemo := fs.Int("stream-demo", 0, "run the in-process control-plane demo over this many agents instead of the simulation: catalog LC apps round-robin, one BE replica per two agents, a per-pod budget tree, and the sharded solver, all driven through live controller rounds")
	transport := fs.String("transport", "stream", "control-plane transport for -stream-demo: stream (delta heartbeats) or poll (per-round HTTP stats)")
	streamRounds := fs.Int("stream-rounds", 12, "controller rounds to run in -stream-demo")
	slowRound := fs.Int("slow-round", 0, "inject synthetic latency past the round deadline into this -stream-demo round (0 = none); with -flight-dir the breach captures exactly one flight bundle")
	flightDir := fs.String("flight-dir", "", "arm the -stream-demo flight recorder: rounds past -round-deadline capture a bundle directory here (inspect with pocolo-trace -bundle)")
	roundDeadline := fs.Duration("round-deadline", 0, "round-latency SLO target for -stream-demo (default 100ms when -flight-dir or -slow-round is set)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *streamDemo > 0 {
		return runStreamDemo(out, demoOptions{
			agents:        *streamDemo,
			transport:     *transport,
			podSize:       *podSize,
			rounds:        *streamRounds,
			seed:          *seed,
			slowRound:     *slowRound,
			flightDir:     *flightDir,
			roundDeadline: *roundDeadline,
		})
	}

	plannerOff, err := parsePlannerFlag(*planner)
	if err != nil {
		return err
	}

	var sys *pocolo.System
	if *modelsPath != "" {
		f, ferr := os.Open(*modelsPath)
		if ferr != nil {
			return ferr
		}
		models, merr := pocolo.LoadModels(f)
		f.Close()
		if merr != nil {
			return merr
		}
		sys, err = pocolo.NewSystemFromModels(pocolo.XeonE52650(), models, *seed)
	} else {
		sys, err = pocolo.NewSystem(*seed)
	}
	if err != nil {
		return err
	}
	sys.Dwell = *dwell
	sys.Parallel = *par
	sys.Invariants = *invariants
	sys.PlannerOff = plannerOff
	if *tracePath != "" || *traceChrome != "" {
		sys.Trace = trace.NewSet(*traceEvents)
	}
	sys.Budget, err = pocolo.ParseBudgetFlags(*budgetW, *budgetPolicy, *budgetTree, *budgetPeriod, *brownout, *brownoutAt, *brownoutNode)
	if err != nil {
		return err
	}

	if *hyper > 0 {
		jobs := *hyperJobs
		if jobs == 0 {
			jobs = *hyper * 3 / 4
		}
		hres, herr := sys.RunHyperscale(pocolo.HyperscaleConfig{
			Fleet: pocolo.FleetConfig{
				Hosts: *hyper,
				Jobs:  jobs,
				Shard: pocolo.ShardSettings{
					PodSize:        *podSize,
					RebalanceGap:   *rebalanceGap,
					BatchThreshold: *batchThreshold,
				},
				BudgetFrac: *hyperBudget,
			},
			Rounds: *hyperRounds,
			Churn:  *churn,
		})
		if herr != nil {
			return herr
		}
		printHyperscale(out, hres)
		return writeTraces(sys, out, *tracePath, *traceChrome)
	}

	var res pocolo.Result
	switch *policyName {
	case "random":
		res, err = sys.Run(pocolo.Random)
	case "pom":
		res, err = sys.Run(pocolo.POM)
	case "pocolo":
		res, err = sys.Run(pocolo.POColo)
	default:
		return fmt.Errorf("unknown policy %q (want random, pom, or pocolo)", *policyName)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "policy: %s\n", res.Policy)
	if len(res.Placement) > 0 {
		fmt.Fprintln(out, "placement:")
		bes := make([]string, 0, len(res.Placement))
		for be := range res.Placement {
			bes = append(bes, be)
		}
		sort.Strings(bes)
		for _, be := range bes {
			fmt.Fprintf(out, "  %-6s -> %s\n", be, res.Placement[be])
		}
	} else {
		fmt.Fprintf(out, "placement: expectation over sampled random permutations\n")
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "%-8s  %12s  %12s  %10s  %10s  %10s\n",
		"server", "BE thr", "power (W)", "power/cap", "SLO viol", "energy kWh")
	names := make([]string, 0, len(res.Hosts))
	for n := range res.Hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := res.Hosts[n]
		fmt.Fprintf(out, "%-8s  %12.1f  %12.1f  %9.1f%%  %9.1f%%  %10.4f\n",
			n, m.BEMeanThr, m.MeanPowerW, m.PowerUtil*100, m.SLOViolFrac*100, m.EnergyKWh)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "cluster BE throughput (normalized): %.3f\n", res.BENormThroughput)
	fmt.Fprintf(out, "cluster mean power utilization:     %.1f%%\n", res.MeanPowerUtil*100)
	fmt.Fprintf(out, "cluster energy:                     %.4f kWh\n", res.TotalEnergyKWh)
	fmt.Fprintf(out, "worst SLO violation fraction:       %.2f%%\n", res.SLOViolFrac*100)

	if res.Budget != nil {
		fmt.Fprintln(out)
		fmt.Fprintf(out, "budget: %d rebalances, %d cuts\n", res.Budget.Rebalances, res.Budget.Cuts)
		shares := make([]string, 0, len(res.Budget.Shares))
		for name := range res.Budget.Shares {
			shares = append(shares, name)
		}
		sort.Strings(shares)
		var sum float64
		for _, name := range shares {
			fmt.Fprintf(out, "  %-8s %8.1f W\n", name, res.Budget.Shares[name])
			sum += res.Budget.Shares[name]
		}
		fmt.Fprintf(out, "  %-8s %8.1f W\n", "total", sum)
		if len(res.Budget.NodeBudgets) > 0 {
			nodes := make([]string, 0, len(res.Budget.NodeBudgets))
			for name := range res.Budget.NodeBudgets {
				nodes = append(nodes, name)
			}
			sort.Strings(nodes)
			fmt.Fprintln(out, "  node budgets:")
			for _, name := range nodes {
				fmt.Fprintf(out, "    %-8s %8.1f W\n", name, res.Budget.NodeBudgets[name])
			}
		}
	}

	return writeTraces(sys, out, *tracePath, *traceChrome)
}

// demoOptions carries the -stream-demo flag set into runStreamDemo.
type demoOptions struct {
	agents, podSize, rounds, slowRound int
	transport, flightDir               string
	seed                               int64
	roundDeadline                      time.Duration
}

// runStreamDemo drives the in-process control-plane demo and prints each
// round's decisions followed by a summary. The decision lines are
// transport-neutral: a stream run and a poll run with the same seed print
// identical decisions, which CI verifies by diffing the two outputs. With
// -slow-round and -flight-dir, the injected breach of the round deadline
// captures a flight bundle under the given directory.
func runStreamDemo(out io.Writer, opts demoOptions) error {
	report, err := controlplane.RunStreamDemo(context.Background(), controlplane.StreamDemoConfig{
		Agents:        opts.agents,
		Transport:     opts.transport,
		PodSize:       opts.podSize,
		Rounds:        opts.rounds,
		Seed:          opts.seed,
		Out:           out,
		SlowRound:     opts.slowRound,
		FlightDir:     opts.flightDir,
		RoundDeadline: opts.roundDeadline,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "demo: %d agents, %d rounds, %d placed, %d deaths, %d rejoins\n",
		opts.agents, report.Rounds, len(report.Status.Placement), report.Deaths, report.Rejoins)
	return report.Err()
}

// writeTraces flushes the system's decision trace to the requested files and
// reports retention; a no-op when tracing is off.
func writeTraces(sys *pocolo.System, out io.Writer, tracePath, traceChrome string) error {
	if sys.Trace == nil {
		return nil
	}
	events := sys.Trace.Events()
	if tracePath != "" {
		canonical := func(w io.Writer, ev []trace.Event) error { return trace.WriteJSONL(w, ev, false) }
		if err := writeTraceFile(tracePath, events, canonical); err != nil {
			return err
		}
	}
	if traceChrome != "" {
		if err := writeTraceFile(traceChrome, events, trace.WriteChromeTrace); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\ntrace: %d events retained (%d dropped)\n", len(events), sys.Trace.Dropped())
	return nil
}

// printHyperscale renders the hyperscale scenario summary: fleet shape,
// the per-round churn/refresh/migration table, and pod budgets if sized.
func printHyperscale(out io.Writer, res pocolo.HyperscaleResult) {
	fmt.Fprintf(out, "hyperscale: %d hosts, %d jobs, %d pods\n", res.Hosts, res.Jobs, res.Pods)
	fmt.Fprintf(out, "initial placement value: %.1f\n", res.InitialTotal)
	if len(res.Rounds) > 0 {
		fmt.Fprintln(out)
		fmt.Fprintf(out, "%-6s  %12s  %8s  %8s  %10s  %10s  %8s\n",
			"round", "value", "hosts Δ", "models Δ", "recomputed", "reused", "moves")
		for _, r := range res.Rounds {
			fmt.Fprintf(out, "%-6d  %12.1f  %8d  %8d  %10d  %10d  %8d\n",
				r.Round, r.Total, r.HostsChanged, r.ClassesChanged,
				r.Refresh.CellsComputed, r.Refresh.CellsReused, r.Moves)
		}
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "final placement value: %.1f (%d migrations over %d rounds)\n",
		res.FinalTotal, res.Moves, len(res.Rounds))
	if res.BudgetSpec != "" {
		pods := make([]string, 0, len(res.PodBudgets))
		for name := range res.PodBudgets {
			pods = append(pods, name)
		}
		sort.Strings(pods)
		var sum float64
		fmt.Fprintln(out, "pod budgets:")
		for _, name := range pods {
			fmt.Fprintf(out, "  %-10s %10.0f W\n", name, res.PodBudgets[name])
			sum += res.PodBudgets[name]
		}
		fmt.Fprintf(out, "  %-10s %10.0f W\n", "total", sum)
	}
}

// writeTraceFile streams events through the given exporter into path.
func writeTraceFile(path string, events []trace.Event, write func(io.Writer, []trace.Event) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parsePlannerFlag maps the -planner flag to System.PlannerOff.
func parsePlannerFlag(v string) (plannerOff bool, err error) {
	switch v {
	case "on":
		return false, nil
	case "off":
		return true, nil
	default:
		return false, fmt.Errorf("unknown -planner value %q (want on or off)", v)
	}
}
