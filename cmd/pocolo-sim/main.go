// Command pocolo-sim runs the four-server cluster simulation under one of
// the paper's policies (random, pom, pocolo) across the uniform 10–90%
// load sweep and prints per-server and cluster-level metrics.
//
// Usage:
//
//	pocolo-sim [-policy pocolo] [-seed 42] [-dwell 5s] [-parallel N] [-models models.json] [-invariants] [-planner on|off]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"pocolo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-sim: ")
	policyName := flag.String("policy", "pocolo", "cluster policy: random, pom, or pocolo")
	seed := flag.Int64("seed", 42, "random seed")
	dwell := flag.Duration("dwell", 5*time.Second, "simulated time per load level")
	par := flag.Int("parallel", 0, "worker pool size for independent hosts and trials (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
	modelsPath := flag.String("models", "", "load fitted models from this JSON file (see pocolo-profile -o) instead of re-profiling")
	invariants := flag.Bool("invariants", false, "check cross-layer invariants (resource conservation, power-cap compliance, slack recovery, physical sanity) on every simulated tick; any violation aborts the run")
	planner := flag.String("planner", "on", "precomputed allocation planner: on (O(log n) frontier lookups) or off (exact per-tick grid search); results are bit-identical either way")
	flag.Parse()

	plannerOff, perr := parsePlannerFlag(*planner)
	if perr != nil {
		log.Fatal(perr)
	}

	var sys *pocolo.System
	var err error
	if *modelsPath != "" {
		f, ferr := os.Open(*modelsPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		models, merr := pocolo.LoadModels(f)
		f.Close()
		if merr != nil {
			log.Fatal(merr)
		}
		sys, err = pocolo.NewSystemFromModels(pocolo.XeonE52650(), models, *seed)
	} else {
		sys, err = pocolo.NewSystem(*seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	sys.Dwell = *dwell
	sys.Parallel = *par
	sys.Invariants = *invariants
	sys.PlannerOff = plannerOff

	var res pocolo.Result
	switch *policyName {
	case "random":
		res, err = sys.Run(pocolo.Random)
	case "pom":
		res, err = sys.Run(pocolo.POM)
	case "pocolo":
		res, err = sys.Run(pocolo.POColo)
	default:
		log.Fatalf("unknown policy %q (want random, pom, or pocolo)", *policyName)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy: %s\n", res.Policy)
	if len(res.Placement) > 0 {
		fmt.Println("placement:")
		bes := make([]string, 0, len(res.Placement))
		for be := range res.Placement {
			bes = append(bes, be)
		}
		sort.Strings(bes)
		for _, be := range bes {
			fmt.Printf("  %-6s -> %s\n", be, res.Placement[be])
		}
	} else {
		fmt.Printf("placement: expectation over sampled random permutations\n")
	}
	fmt.Println()
	fmt.Printf("%-8s  %12s  %12s  %10s  %10s  %10s\n",
		"server", "BE thr", "power (W)", "power/cap", "SLO viol", "energy kWh")
	names := make([]string, 0, len(res.Hosts))
	for n := range res.Hosts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := res.Hosts[n]
		fmt.Printf("%-8s  %12.1f  %12.1f  %9.1f%%  %9.1f%%  %10.4f\n",
			n, m.BEMeanThr, m.MeanPowerW, m.PowerUtil*100, m.SLOViolFrac*100, m.EnergyKWh)
	}
	fmt.Println()
	fmt.Printf("cluster BE throughput (normalized): %.3f\n", res.BENormThroughput)
	fmt.Printf("cluster mean power utilization:     %.1f%%\n", res.MeanPowerUtil*100)
	fmt.Printf("cluster energy:                     %.4f kWh\n", res.TotalEnergyKWh)
	fmt.Printf("worst SLO violation fraction:       %.2f%%\n", res.SLOViolFrac*100)
}

// parsePlannerFlag maps the -planner flag to System.PlannerOff.
func parsePlannerFlag(v string) (plannerOff bool, err error) {
	switch v {
	case "on":
		return false, nil
	case "off":
		return true, nil
	default:
		return false, fmt.Errorf("unknown -planner value %q (want on or off)", v)
	}
}
