package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pocolo/internal/trace"
)

// runTraced runs the CLI once with -trace and -trace-chrome into dir and
// returns the raw JSONL bytes and the parsed events.
func runTraced(t *testing.T, dir, name string) ([]byte, []trace.Event) {
	t.Helper()
	jsonl := filepath.Join(dir, name+".jsonl")
	chrome := filepath.Join(dir, name+"-chrome.json")
	var out bytes.Buffer
	args := []string{"-seed", "7", "-dwell", "1s", "-parallel", "1",
		"-trace", jsonl, "-trace-chrome", chrome}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ParseJSONL(f)
	if err != nil {
		t.Fatalf("parse %s: %v", jsonl, err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatalf("validate %s: %v", jsonl, err)
	}
	cf, err := os.Open(chrome)
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	if err := trace.ValidateChromeTrace(cf); err != nil {
		t.Fatalf("chrome trace %s: %v", chrome, err)
	}
	return raw, events
}

// TestTraceDeterministicReplay runs the same seeded simulation twice and
// demands byte-identical canonical JSONL: the trace must be a pure function
// of the seed, with no wall-clock or scheduling leakage.
func TestTraceDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	dir := t.TempDir()
	rawA, events := runTraced(t, dir, "a")
	rawB, _ := runTraced(t, dir, "b")
	if !bytes.Equal(rawA, rawB) {
		t.Fatalf("seeded replays diverged: run A %d bytes, run B %d bytes", len(rawA), len(rawB))
	}

	byKind := map[trace.Kind]int{}
	controlTicks := 0
	for i := range events {
		byKind[events[i].Kind]++
		if events[i].Kind == trace.KindSpan && events[i].Span.Name == "control_tick" {
			controlTicks++
		}
	}
	if byKind[trace.KindControl] == 0 {
		t.Fatal("no control decisions traced")
	}
	if controlTicks == 0 {
		t.Fatal("no control_tick spans traced")
	}
	// At least one decision per recorded control tick (the acceptance bar);
	// the ring retains the tail of the run, so compare within what survived.
	if byKind[trace.KindControl] < controlTicks {
		t.Fatalf("%d control decisions for %d control ticks; want at least one per tick",
			byKind[trace.KindControl], controlTicks)
	}
	if byKind[trace.KindSolve] == 0 {
		t.Fatal("no solve summaries traced")
	}
	if byKind[trace.KindPlacement] == 0 {
		t.Fatal("no placement events traced")
	}
}

// TestHyperscaleCLI drives the sharded hyperscale scenario through the CLI
// seam and checks the printed summary plus a validated trace file.
func TestHyperscaleCLI(t *testing.T) {
	dir := t.TempDir()
	jsonl := filepath.Join(dir, "hyper.jsonl")
	var out bytes.Buffer
	args := []string{"-seed", "7", "-hyperscale", "64", "-hyperscale-jobs", "48",
		"-pod-size", "16", "-hyperscale-rounds", "2", "-churn", "0.3",
		"-hyperscale-budget", "0.8", "-trace", jsonl}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"hyperscale: 64 hosts, 48 jobs, 4 pods",
		"initial placement value:",
		"final placement value:",
		"pod budgets:",
		"pod-0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := trace.ParseJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(events); err != nil {
		t.Fatal(err)
	}
	sharded := 0
	for _, ev := range events {
		if ev.Kind == trace.KindSolve && ev.Solve.Method == "sharded" {
			sharded++
		}
	}
	if sharded == 0 {
		t.Error("no sharded solve summaries in the hyperscale trace")
	}
}

func TestParsePlannerFlag(t *testing.T) {
	if off, err := parsePlannerFlag("on"); err != nil || off {
		t.Fatalf("on: got off=%v err=%v", off, err)
	}
	if off, err := parsePlannerFlag("off"); err != nil || !off {
		t.Fatalf("off: got off=%v err=%v", off, err)
	}
	if _, err := parsePlannerFlag("auto"); err == nil {
		t.Fatal("auto: want error")
	}
}
