// Command pocolo-profile profiles one application across the server's
// allocation grid, fits its Cobb-Douglas indirect utility model, and
// prints the fitted parameters and preference vectors (the paper's
// Section IV-A pipeline for a single application).
//
// Usage:
//
//	pocolo-profile [-app sphinx] [-seed 42] [-all] [-o models.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"pocolo"
	"pocolo/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-profile: ")
	app := flag.String("app", "sphinx", "application to profile (see -all for the list)")
	seed := flag.Int64("seed", 42, "random seed for measurement noise")
	all := flag.Bool("all", false, "profile every application")
	out := flag.String("o", "", "save the fitted models as JSON to this file")
	flag.Parse()

	cfg := pocolo.XeonE52650()
	cat, err := pocolo.DefaultWorkloads(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var specs []*pocolo.Spec
	if *all {
		specs = append(cat.LC(), cat.BE()...)
	} else {
		spec, err := cat.ByName(*app)
		if err != nil {
			log.Fatalf("%v", err)
		}
		specs = []*pocolo.Spec{spec}
	}

	fitted := make(map[string]*pocolo.Model, len(specs))
	for _, spec := range specs {
		model, err := pocolo.Profile(spec, cfg, *seed)
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		fitted[spec.Name] = model
		direct := model.DirectPreference()
		indirect := model.Preference()
		fmt.Printf("%s (%s, %s)\n", spec.Name, spec.Class, spec.Domain)
		fmt.Printf("  performance model: perf = %.3g · cores^%.3f · ways^%.3f   (R² %.3f)\n",
			model.Alpha0, model.Alpha[0], model.Alpha[1], model.PerfR2)
		fmt.Printf("  power model:       P = %.2f + %.2f·cores + %.2f·ways W    (R² %.3f)\n",
			model.PStatic, model.P[0], model.P[1], model.PowerR2)
		fmt.Printf("  direct preference (α):      cores %.2f : ways %.2f\n", direct[0], direct[1])
		fmt.Printf("  indirect preference (α/p):  cores %.2f : ways %.2f\n", indirect[0], indirect[1])
		if spec.Class == workload.LatencyCritical {
			demand, err := model.MinPowerAlloc(0.5 * spec.PeakLoad)
			if err == nil {
				fmt.Printf("  least-power allocation @50%% load: %.1f cores, %.1f ways (%.1f W dynamic)\n",
					demand[0], demand[1], model.DynamicPower(demand))
			}
		}
		fmt.Println()
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pocolo.SaveModels(f, fitted); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved %d fitted models to %s\n", len(fitted), *out)
	}
}
