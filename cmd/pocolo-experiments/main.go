// Command pocolo-experiments regenerates every table and figure of the
// paper's evaluation on the simulated platform and prints them as text
// tables (or markdown with -markdown, which is how EXPERIMENTS.md data is
// produced).
//
// Usage:
//
//	pocolo-experiments [-seed N] [-dwell 5s] [-parallel N] [-only fig12,fig13] [-markdown]
//	                   [-invariants] [-planner on|off] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	                   [-trace out.jsonl] [-trace-chrome out.json] [-trace-events N]
//	                   [-budget W] [-budget-policy equal|demand] [-budget-tree spec|@file] [-budget-period 5s]
//
// With -trace every cluster run in the selected experiments records its
// control-loop decisions into shared per-host rings; the merged timeline
// is written as JSONL (and as a Perfetto-loadable Chrome trace with
// -trace-chrome). Because successive experiments reuse host names, trace
// a single experiment (e.g. -only fig12) when per-host time monotonicity
// matters.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"pocolo/internal/cluster"
	"pocolo/internal/experiments"
	"pocolo/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-experiments: ")
	seed := flag.Int64("seed", 42, "random seed for profiling noise and placement sampling")
	dwell := flag.Duration("dwell", 5*time.Second, "simulated time per load level in cluster runs")
	par := flag.Int("parallel", 0, "worker pool size for independent simulation units (0 = GOMAXPROCS, 1 = sequential; results identical at any setting)")
	only := flag.String("only", "", "comma-separated subset, e.g. fig12,fig13 (default: all)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown instead of text tables")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	invariants := flag.Bool("invariants", false, "check cross-layer invariants on every simulated tick of every cluster run; any violation aborts the experiment")
	planner := flag.String("planner", "on", "precomputed allocation planner: on (O(log n) frontier lookups) or off (exact per-tick grid search); results are bit-identical either way")
	tracePath := flag.String("trace", "", "write the decision trace as canonical JSONL to this file")
	traceChrome := flag.String("trace-chrome", "", "write the decision trace in Chrome trace-event format (Perfetto-loadable) to this file")
	traceEvents := flag.Int("trace-events", trace.DefaultEvents, "decision-trace ring capacity per host, in events")
	budgetW := flag.Float64("budget", 0, "flat cluster power budget in watts (0 = unbudgeted) applied to every cluster run")
	budgetPolicy := flag.String("budget-policy", "equal", "flat budget division rule: equal or demand")
	budgetTree := flag.String("budget-tree", "", "hierarchical budget-tree spec or @file; leaves name the LC servers; overrides -budget")
	budgetPeriod := flag.Duration("budget-period", 5*time.Second, "budget rebalance interval")
	flag.Parse()

	var plannerOff bool
	switch *planner {
	case "on":
	case "off":
		plannerOff = true
	default:
		log.Fatalf("unknown -planner value %q (want on or off)", *planner)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	suite, err := experiments.NewSuite(*seed)
	if err != nil {
		log.Fatal(err)
	}
	suite.Dwell = *dwell
	suite.Parallel = *par
	suite.Invariants = *invariants
	suite.PlannerOff = plannerOff
	suite.Budget, err = cluster.ParseBudgetFlags(*budgetW, *budgetPolicy, *budgetTree, *budgetPeriod, 0, 0, "")
	if err != nil {
		log.Fatal(err)
	}
	if *tracePath != "" || *traceChrome != "" {
		suite.Trace = trace.NewSet(*traceEvents)
	}

	type runner struct {
		name string
		run  func() (experiments.Table, error)
	}
	runners := []runner{
		{"table1", func() (experiments.Table, error) { return suite.TableI().Table(), nil }},
		{"table2", wrap(suite.TableII)},
		{"fig1", wrap(suite.Fig1)},
		{"fig2", wrap(suite.Fig2)},
		{"fig3", wrap(suite.Fig3)},
		{"fig4", wrap(suite.Fig4)},
		{"fig5", wrap(suite.Fig5)},
		{"fig6", wrap(suite.Fig6)},
		{"fig8", wrap(suite.Fig8)},
		{"fig9to11", wrap(suite.Fig9to11)},
		{"fig12", wrap(suite.Fig12)},
		{"fig13", wrap(suite.Fig13)},
		{"fig14", wrap(suite.Fig14)},
		{"fig15", wrap(suite.Fig15)},
		{"ablation-solvers", wrap(suite.AblationSolvers)},
		{"ablation-slack", wrap(suite.AblationSlack)},
		{"ablation-knob-order", wrap(suite.AblationKnobOrder)},
		{"ablation-myopic", wrap(suite.AblationMyopic)},
		{"ablation-profiling", wrap(suite.AblationProfiling)},
		{"ablation-sharing", wrap(suite.AblationSharing)},
		{"ablation-online", wrap(suite.AblationOnline)},
		{"validation-des", wrap(suite.ValidationDES)},
		{"ablation-scale", wrap(suite.AblationScale)},
		{"ablation-budget", wrap(suite.AblationBudget)},
		{"sensitivity-seeds", func() (experiments.Table, error) {
			res, err := suite.SeedSensitivity()
			if err != nil {
				return experiments.Table{}, err
			}
			return res.Table(), nil
		}},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(name))] = true
		}
	}
	ran := 0
	for _, r := range runners {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		tbl, err := r.run()
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.String())
		}
		ran++
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatalf("-memprofile: %v", err)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("-memprofile: %v", err)
		}
		f.Close()
	}
	if ran == 0 {
		log.Printf("no experiment matched -only=%q", *only)
		os.Exit(2)
	}
	if suite.Trace != nil {
		events := suite.Trace.Events()
		if *tracePath != "" {
			canonical := func(w io.Writer, ev []trace.Event) error { return trace.WriteJSONL(w, ev, false) }
			if err := writeTraceFile(*tracePath, events, canonical); err != nil {
				log.Fatalf("-trace: %v", err)
			}
		}
		if *traceChrome != "" {
			if err := writeTraceFile(*traceChrome, events, trace.WriteChromeTrace); err != nil {
				log.Fatalf("-trace-chrome: %v", err)
			}
		}
		fmt.Printf("trace: %d events retained (%d dropped)\n", len(events), suite.Trace.Dropped())
	}
}

// writeTraceFile streams events through the given exporter into path.
func writeTraceFile(path string, events []trace.Event, write func(io.Writer, []trace.Event) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// tabler is any experiment result that renders as a table.
type tabler interface{ Table() experiments.Table }

// wrap adapts a suite method returning (result, error) into a table runner.
func wrap[T tabler](fn func() (T, error)) func() (experiments.Table, error) {
	return func() (experiments.Table, error) {
		res, err := fn()
		if err != nil {
			return experiments.Table{}, err
		}
		return res.Table(), nil
	}
}
