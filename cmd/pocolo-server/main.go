// Command pocolo-server simulates a single managed, power-capped server:
// one latency-critical primary driven by a configurable load trace, with
// optional best-effort co-runners harvesting the spare resources. It
// prints the run metrics and can dump the full telemetry timeline as CSV
// for plotting.
//
// Usage:
//
//	pocolo-server [-lc xapian] [-be graph] [-policy pom] \
//	              [-trace diurnal] [-level 0.5] [-noise 0] \
//	              [-duration 4m] [-csv timeline.csv] [-seed 42] \
//	              [-catalog apps.json]
//
// Traces: constant, diurnal, two-peak, sweep, step, flash, or csv:FILE to
// replay a two-column "seconds,load-fraction" file.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/profiler"
	"pocolo/internal/servermgr"
	"pocolo/internal/sim"
	"pocolo/internal/utility"
	"pocolo/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-server: ")
	lcName := flag.String("lc", "xapian", "latency-critical primary (img-dnn, sphinx, xapian, tpcc)")
	beNames := flag.String("be", "graph", "comma-separated best-effort co-runners (empty for none)")
	policy := flag.String("policy", "pom", "server management: pom (power-optimized) or baseline (power-unaware)")
	traceKind := flag.String("trace", "diurnal", "load trace: constant, diurnal, two-peak, sweep, step, flash, or csv:FILE")
	level := flag.Float64("level", 0.5, "load level for the constant trace")
	noise := flag.Float64("noise", 0, "relative load jitter added on top of the trace (e.g. 0.05)")
	duration := flag.Duration("duration", 4*time.Minute, "simulated run length")
	csvOut := flag.String("csv", "", "write the telemetry timeline to this CSV file")
	catalogPath := flag.String("catalog", "", "load a custom application catalog from this JSON file")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	cfg := machine.XeonE52650()
	var cat *workload.Catalog
	var err error
	if *catalogPath != "" {
		f, ferr := os.Open(*catalogPath)
		if ferr != nil {
			log.Fatal(ferr)
		}
		cat, err = workload.LoadCatalog(f, cfg)
		f.Close()
	} else {
		cat, err = workload.Defaults(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	lc, err := cat.ByName(*lcName)
	if err != nil {
		log.Fatal(err)
	}
	if lc.Class != workload.LatencyCritical {
		log.Fatalf("%s is not a latency-critical application", *lcName)
	}

	var bes []*workload.Spec
	if *beNames != "" {
		for _, name := range strings.Split(*beNames, ",") {
			be, err := cat.ByName(strings.TrimSpace(name))
			if err != nil {
				log.Fatal(err)
			}
			bes = append(bes, be)
		}
	}

	trace, err := buildTrace(*traceKind, *level, *duration)
	if err != nil {
		log.Fatal(err)
	}
	if *noise > 0 {
		trace, err = workload.NewNoisyTrace(trace, *noise, time.Second, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}

	hc := sim.HostConfig{
		Name:    *lcName,
		Machine: cfg,
		LC:      lc,
		Trace:   trace,
		Seed:    *seed,
	}
	if len(bes) > 0 {
		hc.BE = bes[0]
		hc.ExtraBE = bes[1:]
	}
	host, err := sim.NewHost(hc)
	if err != nil {
		log.Fatal(err)
	}

	model, err := profiler.ProfileAndFit(profiler.Config{Spec: lc, Machine: cfg, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	beModels := make(map[string]*utility.Model)
	for i, be := range bes {
		m, err := profiler.ProfileAndFit(profiler.Config{Spec: be, Machine: cfg, Seed: *seed + int64(i)*101})
		if err != nil {
			log.Fatal(err)
		}
		beModels[be.Name] = m
	}

	mgmt := servermgr.PowerOptimized
	switch *policy {
	case "pom":
	case "baseline":
		mgmt = servermgr.PowerUnaware
	default:
		log.Fatalf("unknown policy %q (want pom or baseline)", *policy)
	}
	mgr, err := servermgr.New(servermgr.Config{
		Host: host, Model: model, Policy: mgmt, Seed: *seed, BEModels: beModels,
	})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.AddHost(host); err != nil {
		log.Fatal(err)
	}
	if err := mgr.Attach(engine); err != nil {
		log.Fatal(err)
	}
	// Run in chunks so an interrupt stops the simulation at the next
	// boundary instead of killing the process: metrics and the -csv
	// timeline still cover the portion that ran.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ran := runInterruptible(ctx, engine, *duration)
	if ran < *duration {
		log.Printf("interrupted after %v of %v simulated", ran, *duration)
	}

	m := host.Metrics()
	fmt.Printf("server %s under %v for %v (%s management)\n", *lcName, trace, ran, mgmt)
	fmt.Printf("  provisioned capacity:  %.0f W\n", m.ProvisionedCapW)
	fmt.Printf("  mean / peak power:     %.1f / %.1f W (%.1f%% of cap)\n", m.MeanPowerW, m.PeakPowerW, m.PowerUtil*100)
	fmt.Printf("  time over cap:         %.2f%% (%d excursions)\n", m.CapOverFrac*100, m.CapEvents)
	fmt.Printf("  energy:                %.4f kWh\n", m.EnergyKWh)
	fmt.Printf("  LC requests served:    %.0f (SLO violations %.2f%% of time, mean slack %.2f)\n", m.LCOps, m.SLOViolFrac*100, m.MeanSlack)
	if len(bes) > 0 {
		fmt.Printf("  BE work completed:     %.0f ops (mean %.1f ops/s)\n", m.BEOps, m.BEMeanThr)
		for name, ops := range m.BEOpsBy {
			fmt.Printf("    %-8s %.0f ops\n", name, ops)
		}
	}

	if *csvOut != "" {
		if err := writeTimeline(*csvOut, host); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline written to %s\n", *csvOut)
	}
}

// runInterruptible advances the engine in one-second slices until the
// full duration has run or ctx is cancelled, returning the simulated
// time actually covered.
func runInterruptible(ctx context.Context, engine *sim.Engine, duration time.Duration) time.Duration {
	const chunk = time.Second
	var ran time.Duration
	for ran < duration {
		select {
		case <-ctx.Done():
			return ran
		default:
		}
		step := chunk
		if rest := duration - ran; rest < step {
			step = rest
		}
		if err := engine.Run(step); err != nil {
			log.Fatal(err)
		}
		ran += step
	}
	return ran
}

// buildTrace constructs the requested load trace.
func buildTrace(kind string, level float64, duration time.Duration) (workload.Trace, error) {
	switch {
	case kind == "constant":
		return workload.NewConstantTrace(level)
	case kind == "diurnal":
		return workload.NewDiurnalTrace(0.1, 0.9, duration)
	case kind == "two-peak":
		return workload.NewTwoPeakTrace(0.1, 0.5, 0.9, duration)
	case kind == "sweep":
		return workload.UniformSweep(duration / 9), nil
	case kind == "step":
		return workload.NewStepTrace(0.5, 0.8, duration/2, duration)
	case kind == "flash":
		return workload.NewFlashCrowdTrace(0.2, 0.9, duration/3, duration/6, duration)
	case strings.HasPrefix(kind, "csv:"):
		path := strings.TrimPrefix(kind, "csv:")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workload.ParseCSVTrace(path, f)
	default:
		return nil, fmt.Errorf("unknown trace %q", kind)
	}
}

// writeTimeline dumps the host's telemetry series as CSV.
func writeTimeline(path string, host *sim.Host) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"seconds", "load_rps", "power_w", "p99_ms", "be_ops_per_s"}); err != nil {
		return err
	}
	power := host.PowerSeries().Points()
	load := host.LoadSeries().Points()
	p99 := host.P99Series().Points()
	be := host.BEThroughputSeries().Points()
	for i := range power {
		row := []string{
			strconv.FormatFloat(power[i].Time.Sub(power[0].Time).Seconds(), 'f', 1, 64),
			strconv.FormatFloat(load[i].Value, 'f', 1, 64),
			strconv.FormatFloat(power[i].Value, 'f', 2, 64),
			strconv.FormatFloat(p99[i].Value, 'f', 3, 64),
			strconv.FormatFloat(be[i].Value, 'f', 2, 64),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}
