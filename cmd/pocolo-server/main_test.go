package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pocolo/internal/machine"
	"pocolo/internal/sim"
	"pocolo/internal/workload"
)

func TestBuildTrace(t *testing.T) {
	for _, kind := range []string{"constant", "diurnal", "two-peak", "sweep", "step", "flash"} {
		tr, err := buildTrace(kind, 0.5, 4*time.Minute)
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if v := tr.LoadFraction(time.Minute); v < 0 || v > 1 {
			t.Errorf("%s: load %v out of range", kind, v)
		}
	}
	if _, err := buildTrace("nope", 0.5, time.Minute); err == nil {
		t.Error("expected error for unknown trace")
	}
	if _, err := buildTrace("csv:/does/not/exist.csv", 0.5, time.Minute); err == nil {
		t.Error("expected error for missing CSV file")
	}
	// A real CSV file round-trips.
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(path, []byte("0,0.2\n60,0.8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := buildTrace("csv:"+path, 0.5, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.LoadFraction(30 * time.Second); got < 0.45 || got > 0.55 {
		t.Errorf("CSV midpoint = %v, want ≈0.5", got)
	}
}

func TestWriteTimeline(t *testing.T) {
	cat := workload.MustDefaults()
	lc, err := cat.ByName("xapian")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.NewConstantTrace(0.5)
	if err != nil {
		t.Fatal(err)
	}
	host, err := sim.NewHost(sim.HostConfig{
		Name: "tl", Machine: machine.XeonE52650(), LC: lc, Trace: trace, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := sim.NewEngine(100 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.AddHost(host); err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := writeTimeline(path, host); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 21 { // header + 20 ticks
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "seconds,load_rps,power_w") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",") {
		t.Errorf("data row = %q", lines[1])
	}
	// Unwritable path errors.
	if err := writeTimeline("/does/not/exist/x.csv", host); err == nil {
		t.Error("expected error for unwritable path")
	}
}
