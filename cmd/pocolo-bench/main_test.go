package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: pocolo
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig12-8           	       5	   2501340 ns/op	 1123657 B/op	   12057 allocs/op
BenchmarkEngineSecond-8    	     120	     98321 ns/op	       0 B/op	       0 allocs/op
BenchmarkPlannerLookup-8   	20000000	        61.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkThroughput-8      	     100	    123456 ns/op	 512.00 MB/s	      64 B/op	       2 allocs/op
BenchmarkNoMem-8           	    1000	      5000 ns/op
BenchmarkSub/case=small-16 	    3000	      1200 ns/op	      16 B/op	       1 allocs/op
PASS
ok  	pocolo	12.3s
`

func TestParse(t *testing.T) {
	snap := Parse(sampleOutput)
	if snap.GoOS != "linux" || snap.GoArch != "amd64" || snap.Package != "pocolo" {
		t.Fatalf("headers: %+v", snap)
	}
	if !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("cpu: %q", snap.CPU)
	}
	if len(snap.Results) != 6 {
		t.Fatalf("got %d results, want 6: %+v", len(snap.Results), snap.Results)
	}
	byName := map[string]Result{}
	for _, r := range snap.Results {
		byName[r.Name] = r
	}

	// GOMAXPROCS suffixes are stripped, including on sub-benchmarks.
	for _, name := range []string{"BenchmarkFig12", "BenchmarkEngineSecond", "BenchmarkSub/case=small"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing %q in %v", name, byName)
		}
	}

	fig := byName["BenchmarkFig12"]
	if fig.Iterations != 5 || fig.NsPerOp != 2501340 || fig.BytesPerOp != 1123657 || fig.AllocsPerOp != 12057 || !fig.HasMem {
		t.Fatalf("Fig12: %+v", fig)
	}

	// The bug this file guards against: explicit zero allocs/op must be
	// recorded as a measurement, not dropped.
	eng := byName["BenchmarkEngineSecond"]
	if !eng.HasMem || eng.AllocsPerOp != 0 || eng.BytesPerOp != 0 {
		t.Fatalf("EngineSecond: %+v", eng)
	}
	b, err := json.Marshal(eng)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"allocs_per_op":0`, `"bytes_per_op":0`} {
		if !strings.Contains(string(b), field) {
			t.Fatalf("marshalled result %s missing %s", b, field)
		}
	}

	// Fractional ns/op and interleaved MB/s columns parse.
	if byName["BenchmarkPlannerLookup"].NsPerOp != 61.5 {
		t.Fatalf("PlannerLookup: %+v", byName["BenchmarkPlannerLookup"])
	}
	thr := byName["BenchmarkThroughput"]
	if thr.BytesPerOp != 64 || thr.AllocsPerOp != 2 {
		t.Fatalf("Throughput: %+v", thr)
	}

	// A line without -benchmem columns still parses, flagged HasMem=false.
	nm := byName["BenchmarkNoMem"]
	if nm.HasMem || nm.NsPerOp != 5000 {
		t.Fatalf("NoMem: %+v", nm)
	}

	// The stripped GOMAXPROCS suffix survives as the per-result worker
	// count, including the -16 sub-benchmark.
	if fig.Procs != 8 {
		t.Fatalf("Fig12 procs: %+v", fig)
	}
	if got := byName["BenchmarkSub/case=small"].Procs; got != 16 {
		t.Fatalf("sub-benchmark procs %d, want 16", got)
	}
	if b, err := json.Marshal(fig); err != nil || !strings.Contains(string(b), `"procs":8`) {
		t.Fatalf("marshalled result %s missing procs", b)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkBroken-8",
		"BenchmarkBroken-8 abc 100 ns/op",
		"BenchmarkBroken-8 10 xyz ns/op",
		"BenchmarkBroken-8 10 100", // no unit
	} {
		if snap := Parse(line + "\n"); len(snap.Results) != 0 {
			t.Errorf("line %q parsed to %+v", line, snap.Results)
		}
	}
}

func snapOf(pairs map[string][]float64) Snapshot {
	var s Snapshot
	for name, vals := range pairs {
		for _, v := range vals {
			s.Results = append(s.Results, Result{Name: name, NsPerOp: v})
		}
	}
	return s
}

func TestCompare(t *testing.T) {
	base := snapOf(map[string][]float64{
		"BenchmarkA":    {100, 90, 110}, // best 90
		"BenchmarkB":    {1000},
		"BenchmarkGone": {50},
	})
	cur := snapOf(map[string][]float64{
		"BenchmarkA":   {140, 130}, // best 130 vs 90: +44%
		"BenchmarkB":   {1100},     // +10%
		"BenchmarkNew": {1},        // no baseline: ignored
	})

	regs := Compare(base, cur, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions: %+v", regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkA" || r.BaseNs != 90 || r.NewNs != 130 {
		t.Fatalf("regression: %+v", r)
	}
	if r.Delta < 0.44 || r.Delta > 0.45 {
		t.Fatalf("delta: %v", r.Delta)
	}

	// Everything passes under a looser budget.
	if regs := Compare(base, cur, 0.50); len(regs) != 0 {
		t.Fatalf("loose budget still flagged: %+v", regs)
	}

	// Duplicate rows in the current snapshot report a name at most once.
	curDup := snapOf(map[string][]float64{"BenchmarkA": {200, 210, 220}})
	if regs := Compare(base, curDup, 0.25); len(regs) != 1 {
		t.Fatalf("duplicate rows reported %d times: %+v", len(regs), regs)
	}
}
