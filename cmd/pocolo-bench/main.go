// Command pocolo-bench runs the repository benchmark harness via
// `go test -bench -benchmem`, parses the standard benchmark output, and
// writes a machine-readable snapshot to BENCH_<date>.json so performance
// regressions are diffable across commits.
//
// Usage:
//
//	pocolo-bench [-bench Fig12|Fig14] [-benchtime 1x] [-count 1]
//	             [-o BENCH_2026-08-05.json] [-dir .] [-note "before memo"]
//
// The snapshot records goos/goarch/cpu, the exact go test invocation, and
// one entry per benchmark with ns/op, B/op, and allocs/op.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full BENCH_<date>.json payload.
type Snapshot struct {
	Date      string   `json:"date"`
	Note      string   `json:"note,omitempty"`
	GoOS      string   `json:"goos,omitempty"`
	GoArch    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Package   string   `json:"pkg,omitempty"`
	Command   []string `json:"command"`
	Results   []Result `json:"results"`
	RawOutput string   `json:"raw_output,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-bench: ")
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime (e.g. 1x, 5x, 100ms)")
	count := flag.Int("count", 1, "passed to go test -count")
	dir := flag.String("dir", ".", "module directory to benchmark")
	out := flag.String("o", "", "output path (default BENCH_<date>.json in -dir)")
	note := flag.String("note", "", "free-form annotation stored in the snapshot")
	raw := flag.Bool("raw", false, "also embed the raw go test output in the snapshot")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	if *out == "" {
		*out = fmt.Sprintf("%s/BENCH_%s.json", strings.TrimRight(*dir, "/"), date)
	}

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "."}
	cmd := exec.Command("go", args...)
	cmd.Dir = *dir
	cmd.Stderr = os.Stderr
	log.Printf("running go %s", strings.Join(args, " "))
	outBytes, err := cmd.Output()
	text := string(outBytes)
	if err != nil {
		// go test prints failures on stdout; surface them before dying.
		fmt.Fprint(os.Stderr, text)
		log.Fatalf("go test: %v", err)
	}

	snap := Parse(text)
	snap.Date = date
	snap.Note = *note
	snap.Command = append([]string{"go"}, args...)
	if *raw {
		snap.RawOutput = text
	}
	if len(snap.Results) == 0 {
		fmt.Fprint(os.Stderr, text)
		log.Fatalf("no benchmark results matched -bench=%q", *bench)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmark results to %s", len(snap.Results), *out)
}

// benchLine matches standard `go test -bench -benchmem` result lines:
//
//	BenchmarkFig14-4   5   23925592 ns/op   5606963 B/op   28530 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse extracts benchmark results and environment headers from go test
// output.
func Parse(text string) Snapshot {
	var snap Snapshot
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			r := Result{Name: m[1]}
			r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
			if m[4] != "" {
				r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			}
			if m[5] != "" {
				r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
			}
			snap.Results = append(snap.Results, r)
		}
	}
	return snap
}
