// Command pocolo-bench runs the repository benchmark harness via
// `go test -bench -benchmem`, parses the standard benchmark output, and
// writes a machine-readable snapshot to BENCH_<date>.json so performance
// regressions are diffable across commits.
//
// Usage:
//
//	pocolo-bench [-bench Fig12|Fig14] [-benchtime 1x] [-count 1]
//	             [-o BENCH_2026-08-05.json] [-dir .] [-note "before memo"]
//	             [-baseline BENCH_old.json] [-max-regress 0.25]
//
// The snapshot records goos/goarch/cpu, the exact go test invocation, and
// one entry per benchmark with ns/op, B/op, and allocs/op. B/op and
// allocs/op are always emitted (zero is a meaningful measurement, not an
// absence), and the per-benchmark GOMAXPROCS suffix (`-8`) is stripped so
// names are stable across machines — the stripped value is preserved per
// result as procs, and the harness records its own gomaxprocs, so a
// snapshot says how many workers a parallel benchmark actually had.
//
// With -baseline, the run is additionally compared against a committed
// snapshot: any benchmark whose best ns/op regresses by more than
// -max-regress (a fraction, default 0.25) fails the command, which makes
// it usable as a CI regression gate. With -max-allocs N, any matched
// benchmark reporting more than N allocs/op fails too — the zero-alloc
// gate the observability hot path is held to.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// HasMem records whether the line carried -benchmem columns at all;
	// without it a genuine 0 B/op is indistinguishable from "not measured".
	HasMem bool `json:"has_mem,omitempty"`
	// Procs is the GOMAXPROCS suffix go test stamped on the name (0 when
	// the name carried none) — the worker count the benchmark ran with.
	Procs int `json:"procs,omitempty"`
}

// Snapshot is the full BENCH_<date>.json payload.
type Snapshot struct {
	Date   string `json:"date"`
	Note   string `json:"note,omitempty"`
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// GoMaxProcs is runtime.GOMAXPROCS of the harness process — the
	// parallelism available to the benchmarks it launched.
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Package    string   `json:"pkg,omitempty"`
	Command    []string `json:"command"`
	Results    []Result `json:"results"`
	RawOutput  string   `json:"raw_output,omitempty"`
	// PeakRSSKB is the benchmark child process's peak resident set in
	// kilobytes (ru_maxrss of the `go test` process tree's leader), so
	// memory blow-ups are diffable alongside ns/op. Zero when the
	// platform doesn't report rusage.
	PeakRSSKB int64 `json:"peak_rss_kb,omitempty"`
	// HarnessHeapInuse is runtime.MemStats.HeapInuse of the harness
	// process after the run — the harness's own footprint, recorded so a
	// snapshot distinguishes benchmark memory (PeakRSSKB) from the
	// parser's.
	HarnessHeapInuse uint64 `json:"harness_heap_inuse_bytes,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-bench: ")
	bench := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "passed to go test -benchtime (e.g. 1x, 5x, 100ms)")
	count := flag.Int("count", 1, "passed to go test -count")
	dir := flag.String("dir", ".", "module directory to benchmark")
	out := flag.String("o", "", "output path (default BENCH_<date>.json in -dir)")
	note := flag.String("note", "", "free-form annotation stored in the snapshot")
	raw := flag.Bool("raw", false, "also embed the raw go test output in the snapshot")
	baseline := flag.String("baseline", "", "compare against this committed snapshot and fail on regression")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional ns/op regression vs -baseline (0.25 = +25%)")
	maxAllocs := flag.Int64("max-allocs", -1, "fail if any matched benchmark exceeds this allocs/op (-1 = no gate)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	if *out == "" {
		*out = fmt.Sprintf("%s/BENCH_%s.json", strings.TrimRight(*dir, "/"), date)
	}

	args := []string{"test", "-run", "^$", "-bench", *bench,
		"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count), "."}
	cmd := exec.Command("go", args...)
	cmd.Dir = *dir
	cmd.Stderr = os.Stderr
	log.Printf("running go %s", strings.Join(args, " "))
	outBytes, err := cmd.Output()
	text := string(outBytes)
	if err != nil {
		// go test prints failures on stdout; surface them before dying.
		fmt.Fprint(os.Stderr, text)
		log.Fatalf("go test: %v", err)
	}

	snap := Parse(text)
	snap.Date = date
	snap.GoMaxProcs = runtime.GOMAXPROCS(0)
	snap.PeakRSSKB = peakRSSKB(cmd.ProcessState)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	snap.HarnessHeapInuse = mem.HeapInuse
	snap.Note = *note
	snap.Command = append([]string{"go"}, args...)
	if *raw {
		snap.RawOutput = text
	}
	if len(snap.Results) == 0 {
		fmt.Fprint(os.Stderr, text)
		log.Fatalf("no benchmark results matched -bench=%q", *bench)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d benchmark results to %s", len(snap.Results), *out)

	if *maxAllocs >= 0 {
		over := 0
		for _, r := range snap.Results {
			if r.HasMem && r.AllocsPerOp > *maxAllocs {
				log.Printf("ALLOCS %s: %d allocs/op (limit %d)", r.Name, r.AllocsPerOp, *maxAllocs)
				over++
			}
		}
		if over > 0 {
			log.Fatalf("%d benchmark(s) allocate beyond the %d allocs/op budget", over, *maxAllocs)
		}
		log.Printf("all benchmarks within %d allocs/op", *maxAllocs)
	}

	if *baseline != "" {
		base, err := LoadSnapshot(*baseline)
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		regressions := Compare(base, snap, *maxRegress)
		for _, c := range regressions {
			log.Printf("REGRESSION %s: %.0f ns/op -> %.0f ns/op (%+.1f%%, limit +%.0f%%)",
				c.Name, c.BaseNs, c.NewNs, c.Delta*100, *maxRegress*100)
		}
		if len(regressions) > 0 {
			log.Fatalf("%d benchmark(s) regressed beyond the %.0f%% budget vs %s",
				len(regressions), *maxRegress*100, *baseline)
		}
		log.Printf("no regressions beyond %.0f%% vs %s", *maxRegress*100, *baseline)
	}
}

// peakRSSKB extracts the child's peak resident set from its rusage, in
// kilobytes. Linux reports ru_maxrss in KB already; other platforms (or
// a nil state) yield zero rather than a wrong unit.
func peakRSSKB(state *os.ProcessState) int64 {
	if state == nil {
		return 0
	}
	ru, ok := state.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		return 0
	}
	if runtime.GOOS == "darwin" {
		return ru.Maxrss / 1024 // darwin reports bytes
	}
	return ru.Maxrss
}

// LoadSnapshot reads a BENCH_<date>.json file written by this command.
func LoadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	b, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Regression is one benchmark whose ns/op grew beyond the allowed budget.
type Regression struct {
	Name   string
	BaseNs float64
	NewNs  float64
	Delta  float64 // fractional change, 0.30 = +30%
}

// Compare matches benchmarks by name (best ns/op across -count repeats,
// the standard noise-robust statistic) and returns those that regressed
// by more than maxRegress. Benchmarks present on only one side are
// ignored: a gate must not fail because a benchmark was added or renamed.
func Compare(base, cur Snapshot, maxRegress float64) []Regression {
	best := func(s Snapshot) map[string]float64 {
		m := make(map[string]float64)
		for _, r := range s.Results {
			if v, ok := m[r.Name]; !ok || r.NsPerOp < v {
				m[r.Name] = r.NsPerOp
			}
		}
		return m
	}
	baseBest, curBest := best(base), best(cur)
	var out []Regression
	for _, r := range cur.Results {
		b, ok := baseBest[r.Name]
		if !ok || b <= 0 {
			continue
		}
		c := curBest[r.Name]
		if delta := c/b - 1; delta > maxRegress {
			out = append(out, Regression{Name: r.Name, BaseNs: b, NewNs: c, Delta: delta})
			delete(curBest, r.Name) // report each name once
		}
	}
	return out
}

// procSuffix is the GOMAXPROCS decoration go test appends to benchmark
// names (`BenchmarkFig12-8`). It is machine-dependent, so it is stripped
// to keep names comparable across snapshots.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse extracts benchmark results and environment headers from go test
// output. Parsing is field-based rather than one rigid regexp: the name
// and iteration count are positional, and every remaining "value unit"
// pair is matched by unit, so lines with or without -benchmem columns,
// with MB/s throughput, or with custom metrics all parse. Explicit zero
// B/op and allocs/op values are recorded as measurements.
func Parse(text string) Snapshot {
	var snap Snapshot
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			snap.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				snap.Results = append(snap.Results, r)
			}
		}
	}
	return snap
}

// parseLine parses one `BenchmarkName-N  iters  v unit  v unit ...` row.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	r := Result{Name: procSuffix.ReplaceAllString(fields[0], "")}
	if suf := procSuffix.FindString(fields[0]); suf != "" {
		// Benchmark names cannot end in -N themselves (gofmt'd Go
		// identifiers have no dashes), so the suffix is unambiguous.
		if n, err := strconv.Atoi(suf[1:]); err == nil {
			r.Procs = n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r.Iterations = iters
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			if r.NsPerOp, err = strconv.ParseFloat(val, 64); err != nil {
				return Result{}, false
			}
			seen = true
		case "B/op":
			if r.BytesPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
			r.HasMem = true
		case "allocs/op":
			if r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64); err != nil {
				return Result{}, false
			}
			r.HasMem = true
		default:
			// MB/s, custom ReportMetric units, etc. — skipped, not fatal.
		}
	}
	return r, seen
}
