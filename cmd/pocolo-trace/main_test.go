package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pocolo/internal/trace"
)

// writeSampleTrace records a few events and writes them as canonical
// JSONL, returning the file path.
func writeSampleTrace(t *testing.T, dir string) string {
	t.Helper()
	tr := trace.New("host-a", 16)
	now := time.Unix(0, 0).UTC()
	tr.ControlDecision(now.Add(time.Second), trace.ControlDecision{
		Tick: 1, Load: 0.5, Target: 0.55, Path: trace.PathExact, Feasible: true,
	})
	tr.CapAction(now.Add(2*time.Second), trace.CapAction{
		PowerW: 120, CapW: 100, Action: trace.ActionThrottleFreq,
	})
	path := filepath.Join(dir, "sample.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := trace.WriteJSONL(f, tr.Events(), false); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateSummaryAndConvert(t *testing.T) {
	dir := t.TempDir()
	jsonl := writeSampleTrace(t, dir)
	chrome := filepath.Join(dir, "sample-chrome.json")

	var out bytes.Buffer
	if err := run([]string{"-validate", "-summary", "-chrome", chrome, jsonl}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"2 events, schema valid", "control", "cap", "host-a", "time range: 1.000s .. 2.000s"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	out.Reset()
	if err := run([]string{"-validate-chrome", chrome}, &out); err != nil {
		t.Fatalf("validate-chrome: %v", err)
	}
	if !strings.Contains(out.String(), "valid Chrome trace") {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	jsonl := writeSampleTrace(t, dir)
	var out bytes.Buffer
	if err := run([]string{jsonl}, &out); err == nil {
		t.Error("no mode: want error")
	}
	if err := run([]string{"-validate"}, &out); err == nil {
		t.Error("no file: want error")
	}
	if err := run([]string{"-validate-chrome", "-summary", jsonl}, &out); err == nil {
		t.Error("mixed chrome/jsonl modes: want error")
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{\"seq\":1}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-validate", bad}, &out); err == nil {
		t.Error("malformed JSONL: want error")
	}
}
