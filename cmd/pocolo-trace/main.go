// Command pocolo-trace inspects and converts decision-trace files
// produced by pocolo-sim, pocolo-experiments, pocolo-agent, or
// pocolo-controller.
//
// Usage:
//
//	pocolo-trace -validate trace.jsonl            # schema + monotonicity check
//	pocolo-trace -summary trace.jsonl             # per-kind / per-host counts
//	pocolo-trace -chrome out.json trace.jsonl     # convert JSONL -> Chrome trace
//	pocolo-trace -validate-chrome trace-chrome.json
//	pocolo-trace -bundle flight/bundle-0001-t...  # validate + summarize a flight bundle
//
// Modes compose: -validate -summary trace.jsonl validates first, then
// prints the summary. Exactly one positional trace file is required.
//
// -bundle takes a flight-recorder bundle directory (see pocolo-sim
// -flight-dir and DESIGN.md §16): it validates the embedded event log
// against the trace schema, cross-checks meta.json's event count,
// decodes the obs snapshot, requires the goroutine and heap profiles to
// be present and non-empty, and prints a one-screen summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"

	"pocolo/internal/obs"
	"pocolo/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-trace: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pocolo-trace", flag.ContinueOnError)
	validate := fs.Bool("validate", false, "validate the JSONL trace against the event schema (kinds, payloads, per-host seq/time monotonicity)")
	summary := fs.Bool("summary", false, "print per-kind and per-host event counts and the covered time range")
	chromeOut := fs.String("chrome", "", "convert the JSONL trace to Chrome trace-event format at this path")
	validateChrome := fs.Bool("validate-chrome", false, "treat the input as a Chrome trace-event file and validate it")
	bundle := fs.Bool("bundle", false, "treat the argument as a flight-recorder bundle directory: validate its artifacts and print a summary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file argument, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	if !*validate && !*summary && *chromeOut == "" && !*validateChrome && !*bundle {
		return fmt.Errorf("nothing to do: pass -validate, -summary, -chrome OUT, -validate-chrome, or -bundle")
	}

	if *bundle {
		if *validate || *summary || *chromeOut != "" || *validateChrome {
			return fmt.Errorf("-bundle reads a bundle directory and cannot combine with the trace-file modes")
		}
		return checkBundle(out, path)
	}

	if *validateChrome {
		if *validate || *summary || *chromeOut != "" {
			return fmt.Errorf("-validate-chrome reads a Chrome trace file and cannot combine with the JSONL modes")
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.ValidateChromeTrace(f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: valid Chrome trace\n", path)
		return nil
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := trace.ParseJSONL(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	if *validate {
		if err := trace.Validate(events); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: %d events, schema valid\n", path, len(events))
	}
	if *chromeOut != "" {
		cf, err := os.Create(*chromeOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(cf, events); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *chromeOut)
	}
	if *summary {
		printSummary(out, events)
	}
	return nil
}

// checkBundle validates one flight-recorder bundle directory and prints
// its summary: the event log must parse and pass schema validation,
// meta.json's event count must match, obs.json must decode as a metrics
// snapshot, and both profiles must be present and non-empty.
func checkBundle(out io.Writer, dir string) error {
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	var meta obs.BundleMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return fmt.Errorf("bundle %s: meta.json: %w", dir, err)
	}

	ef, err := os.Open(filepath.Join(dir, "events.jsonl"))
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	events, err := trace.ParseJSONL(ef)
	ef.Close()
	if err != nil {
		return fmt.Errorf("bundle %s: events.jsonl: %w", dir, err)
	}
	if err := trace.Validate(events); err != nil {
		return fmt.Errorf("bundle %s: events.jsonl: %w", dir, err)
	}
	if len(events) != meta.Events {
		return fmt.Errorf("bundle %s: meta.json says %d events, events.jsonl holds %d", dir, meta.Events, len(events))
	}

	obsRaw, err := os.ReadFile(filepath.Join(dir, "obs.json"))
	if err != nil {
		return fmt.Errorf("bundle %s: %w", dir, err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(obsRaw, &snap); err != nil {
		return fmt.Errorf("bundle %s: obs.json: %w", dir, err)
	}

	for _, prof := range []string{"goroutine.txt", "heap.pprof"} {
		st, err := os.Stat(filepath.Join(dir, prof))
		if err != nil {
			return fmt.Errorf("bundle %s: %w", dir, err)
		}
		if st.Size() == 0 {
			return fmt.Errorf("bundle %s: %s is empty", dir, prof)
		}
	}

	fmt.Fprintf(out, "%s: valid bundle\n", dir)
	fmt.Fprintf(out, "reason: %s (seq %d, t=%.3fs)\n", meta.Reason, meta.Seq, float64(meta.TNS)/1e9)
	if len(meta.Detail) > 0 {
		keys := make([]string, 0, len(meta.Detail))
		for k := range meta.Detail {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, "  %s: %v\n", k, meta.Detail[k])
		}
	}
	fmt.Fprintf(out, "obs: %d counters, %d gauges, %d histograms\n",
		len(snap.Counters), len(snap.Gauges), len(snap.Histograms))
	printSummary(out, events)
	return nil
}

// printSummary prints per-kind and per-host counts plus the simulated
// time range the trace covers.
func printSummary(out io.Writer, events []trace.Event) {
	byKind := map[string]int{}
	byHost := map[string]int{}
	var minT, maxT int64
	for i := range events {
		ev := &events[i]
		byKind[ev.Kind.String()]++
		byHost[ev.Host]++
		if i == 0 || ev.TNS < minT {
			minT = ev.TNS
		}
		if ev.TNS > maxT {
			maxT = ev.TNS
		}
	}
	fmt.Fprintf(out, "events: %d\n", len(events))
	if len(events) > 0 {
		fmt.Fprintf(out, "time range: %.3fs .. %.3fs\n", float64(minT)/1e9, float64(maxT)/1e9)
	}
	fmt.Fprintln(out, "by kind:")
	for _, k := range sortedKeys(byKind) {
		fmt.Fprintf(out, "  %-12s %d\n", k, byKind[k])
	}
	fmt.Fprintln(out, "by host:")
	for _, h := range sortedKeys(byHost) {
		fmt.Fprintf(out, "  %-12s %d\n", h, byHost[h])
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
