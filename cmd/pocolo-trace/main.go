// Command pocolo-trace inspects and converts decision-trace files
// produced by pocolo-sim, pocolo-experiments, pocolo-agent, or
// pocolo-controller.
//
// Usage:
//
//	pocolo-trace -validate trace.jsonl            # schema + monotonicity check
//	pocolo-trace -summary trace.jsonl             # per-kind / per-host counts
//	pocolo-trace -chrome out.json trace.jsonl     # convert JSONL -> Chrome trace
//	pocolo-trace -validate-chrome trace-chrome.json
//
// Modes compose: -validate -summary trace.jsonl validates first, then
// prints the summary. Exactly one positional trace file is required.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"pocolo/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pocolo-trace: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pocolo-trace", flag.ContinueOnError)
	validate := fs.Bool("validate", false, "validate the JSONL trace against the event schema (kinds, payloads, per-host seq/time monotonicity)")
	summary := fs.Bool("summary", false, "print per-kind and per-host event counts and the covered time range")
	chromeOut := fs.String("chrome", "", "convert the JSONL trace to Chrome trace-event format at this path")
	validateChrome := fs.Bool("validate-chrome", false, "treat the input as a Chrome trace-event file and validate it")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("want exactly one trace file argument, got %d", fs.NArg())
	}
	path := fs.Arg(0)
	if !*validate && !*summary && *chromeOut == "" && !*validateChrome {
		return fmt.Errorf("nothing to do: pass -validate, -summary, -chrome OUT, or -validate-chrome")
	}

	if *validateChrome {
		if *validate || *summary || *chromeOut != "" {
			return fmt.Errorf("-validate-chrome reads a Chrome trace file and cannot combine with the JSONL modes")
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.ValidateChromeTrace(f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: valid Chrome trace\n", path)
		return nil
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	events, err := trace.ParseJSONL(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	if *validate {
		if err := trace.Validate(events); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(out, "%s: %d events, schema valid\n", path, len(events))
	}
	if *chromeOut != "" {
		cf, err := os.Create(*chromeOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(cf, events); err != nil {
			cf.Close()
			return err
		}
		if err := cf.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *chromeOut)
	}
	if *summary {
		printSummary(out, events)
	}
	return nil
}

// printSummary prints per-kind and per-host counts plus the simulated
// time range the trace covers.
func printSummary(out io.Writer, events []trace.Event) {
	byKind := map[string]int{}
	byHost := map[string]int{}
	var minT, maxT int64
	for i := range events {
		ev := &events[i]
		byKind[ev.Kind.String()]++
		byHost[ev.Host]++
		if i == 0 || ev.TNS < minT {
			minT = ev.TNS
		}
		if ev.TNS > maxT {
			maxT = ev.TNS
		}
	}
	fmt.Fprintf(out, "events: %d\n", len(events))
	if len(events) > 0 {
		fmt.Fprintf(out, "time range: %.3fs .. %.3fs\n", float64(minT)/1e9, float64(maxT)/1e9)
	}
	fmt.Fprintln(out, "by kind:")
	for _, k := range sortedKeys(byKind) {
		fmt.Fprintf(out, "  %-12s %d\n", k, byKind[k])
	}
	fmt.Fprintln(out, "by host:")
	for _, h := range sortedKeys(byHost) {
		fmt.Fprintf(out, "  %-12s %d\n", h, byHost[h])
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
