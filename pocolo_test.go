package pocolo

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(42)
	if err != nil {
		t.Fatal(err)
	}
	sys.Dwell = 2 * time.Second
	return sys
}

func TestNewSystem(t *testing.T) {
	sys := newTestSystem(t)
	if len(sys.Models) != 8 {
		t.Fatalf("models = %d", len(sys.Models))
	}
	if sys.Machine.Cores != 12 {
		t.Errorf("machine = %+v", sys.Machine)
	}
	if _, err := sys.Model("xapian"); err != nil {
		t.Errorf("Model(xapian): %v", err)
	}
	if _, err := sys.Model("nope"); err == nil {
		t.Error("Model(nope): expected error")
	}
}

func TestNewSystemOnBadConfig(t *testing.T) {
	if _, err := NewSystemOn(MachineConfig{}, 1); err == nil {
		t.Error("expected error for invalid platform")
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	sys := newTestSystem(t)
	mx, err := sys.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.Value) != 4 {
		t.Fatalf("matrix rows = %d", len(mx.Value))
	}
	placement, predicted, err := sys.Place()
	if err != nil {
		t.Fatal(err)
	}
	if predicted <= 0 || len(placement) != 4 {
		t.Fatalf("placement = %v (%v)", placement, predicted)
	}
	res, err := sys.RunPlacement(placement, PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if res.BENormThroughput <= 0 {
		t.Errorf("throughput = %v", res.BENormThroughput)
	}
	if res.SLOViolFrac > 0.15 {
		t.Errorf("SLO violations = %v", res.SLOViolFrac)
	}
}

func TestPublicPolicyRun(t *testing.T) {
	sys := newTestSystem(t)
	res, err := sys.Run(POColo)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != POColo {
		t.Errorf("policy = %v", res.Policy)
	}
	if len(res.Hosts) != 4 {
		t.Errorf("hosts = %d", len(res.Hosts))
	}
}

func TestPublicRunPair(t *testing.T) {
	sys := newTestSystem(t)
	pr, err := sys.RunPair("sphinx", "graph")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Mean <= 0 {
		t.Errorf("pair mean = %v", pr.Mean)
	}
	if _, err := sys.RunPair("nope", "graph"); err == nil {
		t.Error("expected error for unknown LC app")
	}
	if _, err := sys.RunPair("sphinx", "nope"); err == nil {
		t.Error("expected error for unknown BE app")
	}
}

func TestPublicProfileAndFit(t *testing.T) {
	cfg := XeonE52650()
	cat, err := DefaultWorkloads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cat.ByName("lstm")
	if err != nil {
		t.Fatal(err)
	}
	model, err := Profile(spec, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if model.PerfR2 < 0.8 {
		t.Errorf("R² = %v", model.PerfR2)
	}
	// Direct fitting through the public surface.
	var samples []Sample
	for c := 1.0; c <= 8; c++ {
		for w := 2.0; w <= 16; w += 2 {
			samples = append(samples, Sample{
				Alloc: []float64{c, w},
				Perf:  10 * c * w,
				Power: 5 + 3*c + w,
			})
		}
	}
	m, err := FitModel("toy", []string{"cores", "ways"}, samples)
	if err != nil {
		t.Fatal(err)
	}
	pref := m.Preference()
	if len(pref) != 2 {
		t.Errorf("preference = %v", pref)
	}
}

func TestPublicExperimentsSuite(t *testing.T) {
	sys := newTestSystem(t)
	suite, err := sys.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if suite.Dwell != sys.Dwell {
		t.Error("suite should inherit the system's dwell")
	}
	r, err := suite.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Errorf("fig8 rows = %d", len(r.Rows))
	}
}

func TestPublicSimulateServer(t *testing.T) {
	sys := newTestSystem(t)
	// A 4-minute diurnal cycle: fast enough to exercise reclamation,
	// slow enough that the 100 ms capper can track the envelope.
	trace, err := DiurnalTrace(0.1, 0.9, 4*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	host, m, err := sys.SimulateServer("xapian", "graph", trace, PowerOptimized, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if host == nil || m.DurationSec != 120 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.BEOps <= 0 {
		t.Error("co-runner made no progress")
	}
	if m.CapOverFrac > 0.10 {
		t.Errorf("over cap %v", m.CapOverFrac)
	}
	if _, _, err := sys.SimulateServer("nope", "", trace, PowerOptimized, time.Minute); err == nil {
		t.Error("expected error for unknown LC app")
	}
	if _, _, err := sys.SimulateServer("xapian", "nope", trace, PowerOptimized, time.Minute); err == nil {
		t.Error("expected error for unknown co-runner")
	}
}

func TestPublicRunBatch(t *testing.T) {
	sys := newTestSystem(t)
	trace, err := ConstantTrace(0.2)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []BatchJob{
		{App: "graph", SizeOps: 200},
		{App: "rnn", SizeOps: 400},
	}
	res, err := sys.RunBatch("xapian", trace, SJF, 2*time.Second, jobs, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("batch incomplete: %v", res.Progress)
	}
	if len(res.Completions) != 2 {
		t.Fatalf("completions = %v", res.Completions)
	}
	// SJF finishes the smaller job first.
	if res.Completions[0].App != "graph" {
		t.Errorf("SJF order broken: %v", res.Completions)
	}
	if res.Makespan <= 0 || res.MeanFlowTime <= 0 {
		t.Error("batch metrics missing")
	}
	if res.Host.SLOViolFrac > 0.10 {
		t.Errorf("SLO violations %v", res.Host.SLOViolFrac)
	}
	// Validation paths.
	if _, err := sys.RunBatch("xapian", trace, FCFS, 0, nil, time.Minute); err == nil {
		t.Error("expected error for no jobs")
	}
	if _, err := sys.RunBatch("xapian", trace, FCFS, 0, jobs, 0); err == nil {
		t.Error("expected error for no simulation budget")
	}
	if _, err := sys.RunBatch("nope", trace, FCFS, 0, jobs, time.Minute); err == nil {
		t.Error("expected error for unknown LC app")
	}
	if _, err := sys.RunBatch("xapian", trace, FCFS, 0, []BatchJob{{App: "nope", SizeOps: 1}}, time.Minute); err == nil {
		t.Error("expected error for unknown job app")
	}
}

func TestPublicTraceConstructors(t *testing.T) {
	if _, err := TwoPeakTrace(0.1, 0.5, 0.9, time.Hour); err != nil {
		t.Error(err)
	}
	if _, err := FlashCrowdTrace(0.2, 0.9, time.Second, time.Second, time.Minute); err != nil {
		t.Error(err)
	}
	inner, _ := ConstantTrace(0.5)
	if _, err := NoisyTrace(inner, 0.05, time.Second, 1); err != nil {
		t.Error(err)
	}
	tr, err := ReplayTraceCSV("t", strings.NewReader("0,0.1\n60,0.9\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != time.Minute {
		t.Errorf("Duration = %v", tr.Duration())
	}
	if _, err := StepTrace(0.2, 0.8, time.Second, time.Minute); err != nil {
		t.Error(err)
	}
	if got := UniformSweepTrace(time.Second).Duration(); got != 9*time.Second {
		t.Errorf("sweep duration = %v", got)
	}
	if _, err := HamiltonTCO().Monthly(TCOInput{Name: "x", ProvisionedWPerServer: 150, MeanPowerWPerServer: 100, RelativeThroughput: 1}); err != nil {
		t.Error(err)
	}
}

func TestPublicSimulateBudgetedCluster(t *testing.T) {
	sys := newTestSystem(t)
	loads := map[string]float64{"img-dnn": 0.8, "sphinx": 0.1, "xapian": 0.6, "tpcc": 0.3}
	res, err := sys.SimulateBudgetedCluster(loads, nil, 0.85, DemandProportional, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 4 || len(res.Shares) != 4 {
		t.Fatalf("hosts/shares = %d/%d", len(res.Hosts), len(res.Shares))
	}
	var shareSum float64
	for name, s := range res.Shares {
		if s <= 50 {
			t.Errorf("%s: share %v below the idle floor", name, s)
		}
		shareSum += s
	}
	if shareSum > res.BudgetW+1e-6 {
		t.Errorf("shares %v exceed budget %v", shareSum, res.BudgetW)
	}
	if res.MeanClusterW > res.BudgetW*1.02 {
		t.Errorf("cluster draw %v above budget %v", res.MeanClusterW, res.BudgetW)
	}
	for name, m := range res.Hosts {
		if m.SLOViolFrac > 0.10 {
			t.Errorf("%s: SLO violations %v", name, m.SLOViolFrac)
		}
	}
	// Validation paths.
	if _, err := sys.SimulateBudgetedCluster(loads, nil, 0, DemandProportional, time.Minute); err == nil {
		t.Error("expected error for zero budget fraction")
	}
	if _, err := sys.SimulateBudgetedCluster(loads, nil, 0.85, EqualSplit, 0); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := sys.SimulateBudgetedCluster(map[string]float64{"img-dnn": 0.5}, nil, 0.85, EqualSplit, time.Minute); err == nil {
		t.Error("expected error for missing loads")
	}
}

func TestPublicModelPersistence(t *testing.T) {
	sys := newTestSystem(t)
	var buf bytes.Buffer
	if err := SaveModels(&buf, sys.Models); err != nil {
		t.Fatal(err)
	}
	models, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := NewSystemFromModels(XeonE52650(), models, sys.Seed)
	if err != nil {
		t.Fatal(err)
	}
	restored.Dwell = 2 * time.Second
	// The restored system makes the same placement decision.
	orig, _, err := sys.Place()
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := restored.Place()
	if err != nil {
		t.Fatal(err)
	}
	for be, lc := range orig {
		if loaded[be] != lc {
			t.Errorf("placement diverged after round-trip: %v vs %v", loaded, orig)
		}
	}
	// Missing models are rejected.
	delete(models, "xapian")
	if _, err := NewSystemFromModels(XeonE52650(), models, 1); err == nil {
		t.Error("expected error for missing model")
	}
}

func TestPublicSimulateAdaptiveServer(t *testing.T) {
	sys := newTestSystem(t)
	trace := UniformSweepTrace(5 * time.Second)
	res, err := sys.SimulateAdaptiveServer("xapian", "img-dnn", trace, 90*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refits == 0 {
		t.Error("adapter never refit")
	}
	if res.Observations < 30 {
		t.Errorf("observations = %d", res.Observations)
	}
	truth := sys.Models["xapian"].Preference()[0]
	borrowed := sys.Models["img-dnn"].Preference()[0]
	got := res.FinalPreference[0]
	if d, b := got-truth, borrowed-truth; d*d >= b*b {
		t.Errorf("preference %v did not move toward truth %v from %v", got, truth, borrowed)
	}
	if res.Host.SLOViolFrac > 0.10 {
		t.Errorf("violations %v", res.Host.SLOViolFrac)
	}
	if _, err := sys.SimulateAdaptiveServer("nope", "img-dnn", trace, time.Minute); err == nil {
		t.Error("expected error for unknown LC app")
	}
	if _, err := sys.SimulateAdaptiveServer("xapian", "nope", trace, time.Minute); err == nil {
		t.Error("expected error for unknown donor model")
	}
}

func TestPublicCatalogIO(t *testing.T) {
	cfg := XeonE52650()
	cat, err := DefaultWorkloads(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCatalog(&buf, cat); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCatalog(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Names()) != 8 {
		t.Errorf("loaded %d apps", len(loaded.Names()))
	}
}

func TestPublicRunReplicated(t *testing.T) {
	sys := newTestSystem(t)
	sys.Dwell = time.Second
	res, err := sys.RunReplicated(2, PowerOptimized)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hosts) != 8 {
		t.Fatalf("hosts = %d", len(res.Hosts))
	}
	if res.BENormThroughput <= 0 {
		t.Errorf("throughput = %v", res.BENormThroughput)
	}
	if _, err := sys.RunReplicated(0, PowerOptimized); err == nil {
		t.Error("expected error for zero replicas")
	}
}

func TestPublicRunHyperscale(t *testing.T) {
	sys := newTestSystem(t)
	res, err := sys.RunHyperscale(HyperscaleConfig{
		Fleet: FleetConfig{
			Hosts: 64,
			Jobs:  48,
			Shard: ShardSettings{PodSize: 16},
		},
		Rounds: 2,
		Churn:  0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts != 64 || res.Jobs != 48 || res.Pods != 4 {
		t.Fatalf("shape %d/%d/%d", res.Hosts, res.Jobs, res.Pods)
	}
	if res.FinalTotal <= 0 || len(res.Rounds) != 2 {
		t.Fatalf("total %v over %d rounds", res.FinalTotal, len(res.Rounds))
	}
	if _, err := sys.RunHyperscale(HyperscaleConfig{
		Fleet: FleetConfig{Hosts: 4, Jobs: 8},
	}); err == nil {
		t.Error("expected error for jobs > hosts")
	}
}
