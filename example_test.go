package pocolo_test

import (
	"fmt"
	"math"
	"sort"
	"time"

	"pocolo"
)

// ExampleFitModel fits the Cobb-Douglas indirect utility model to exact
// synthetic profiling samples and recovers the ground-truth parameters.
func ExampleFitModel() {
	var samples []pocolo.Sample
	for c := 1.0; c <= 8; c++ {
		for w := 2.0; w <= 16; w += 2 {
			samples = append(samples, pocolo.Sample{
				Alloc: []float64{c, w},
				Perf:  40 * math.Pow(c, 0.6) * math.Pow(w, 0.4),
				Power: 5 + 3*c + 1.5*w,
			})
		}
	}
	m, err := pocolo.FitModel("demo", []string{"cores", "ways"}, samples)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("α = [%.2f %.2f], p = [%.2f %.2f] W/unit\n", m.Alpha[0], m.Alpha[1], m.P[0], m.P[1])
	// Output:
	// α = [0.60 0.40], p = [3.00 1.50] W/unit
}

// ExampleModel_Demand shows the closed-form budget-constrained demand: a
// Cobb-Douglas consumer splits the power budget across resources in
// proportion to their exponents.
func ExampleModel_Demand() {
	m := &pocolo.Model{
		App:       "demo",
		Resources: []string{"cores", "ways"},
		Alpha0:    40,
		Alpha:     []float64{0.6, 0.4},
		P:         []float64{3, 1.5},
	}
	r := m.Demand(30) // 30 W dynamic budget
	fmt.Printf("buy %.1f cores (%.0f W) and %.1f ways (%.0f W)\n",
		r[0], r[0]*m.P[0], r[1], r[1]*m.P[1])
	// Output:
	// buy 6.0 cores (18 W) and 8.0 ways (12 W)
}

// ExampleModel_MinPowerAlloc computes the least-power allocation for a
// performance target — the configuration the server manager installs each
// second.
func ExampleModel_MinPowerAlloc() {
	m := &pocolo.Model{
		App:       "demo",
		Resources: []string{"cores", "ways"},
		Alpha0:    40,
		Alpha:     []float64{0.6, 0.4},
		P:         []float64{3, 1.5},
	}
	r, err := m.MinPowerAlloc(200)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%.2f cores, %.2f ways at %.1f W\n", r[0], r[1], m.DynamicPower(r))
	fmt.Printf("achieves performance %.0f\n", m.Perf(r))
	// Output:
	// 4.46 cores, 5.94 ways at 22.3 W
	// achieves performance 200
}

// ExampleModel_Preference prints the performance-per-watt preference
// vector — the quantity Pocolo matches across co-located applications.
func ExampleModel_Preference() {
	m := &pocolo.Model{
		App:       "sphinx-like",
		Resources: []string{"cores", "ways"},
		Alpha0:    1,
		Alpha:     []float64{0.6, 0.4},
		P:         []float64{8.6, 1.43},
	}
	pref := m.Preference()
	fmt.Printf("cores %.2f : ways %.2f\n", pref[0], pref[1])
	// Output:
	// cores 0.20 : ways 0.80
}

// ExampleTCOParams_Monthly reproduces the paper's Fig. 15 cost arithmetic
// for one operating point.
func ExampleTCOParams_Monthly() {
	b, err := pocolo.HamiltonTCO().Monthly(pocolo.TCOInput{
		Name:                  "demo",
		ProvisionedWPerServer: 150,
		MeanPowerWPerServer:   120,
		RelativeThroughput:    1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("servers $%.2fM, power infra $%.2fM, energy $%.2fM per month\n",
		b.ServerMonthlyUSD/1e6, b.PowerInfraMonthlyUSD/1e6, b.EnergyMonthlyUSD/1e6)
	// Output:
	// servers $4.03M, power infra $1.12M, energy $0.67M per month
}

// ExampleSystem_Place builds the full system and computes the
// power-optimized placement — the paper's Fig. 14 outcome.
func ExampleSystem_Place() {
	sys, err := pocolo.NewSystem(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	placement, _, err := sys.Place()
	if err != nil {
		fmt.Println(err)
		return
	}
	bes := make([]string, 0, len(placement))
	for be := range placement {
		bes = append(bes, be)
	}
	sort.Strings(bes)
	for _, be := range bes {
		fmt.Printf("%s -> %s\n", be, placement[be])
	}
	// Output:
	// graph -> sphinx
	// lstm -> img-dnn
	// pbzip -> xapian
	// rnn -> tpcc
}

// ExampleSystem_RunBatch time-shares three finite best-effort jobs over a
// xapian server's spare resources with shortest-job-first scheduling.
func ExampleSystem_RunBatch() {
	sys, err := pocolo.NewSystem(42)
	if err != nil {
		fmt.Println(err)
		return
	}
	trace, err := pocolo.ConstantTrace(0.3)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sys.RunBatch("xapian", trace, pocolo.SJF, 5*time.Second, []pocolo.BatchJob{
		{App: "lstm", SizeOps: 900},
		{App: "rnn", SizeOps: 300},
		{App: "graph", SizeOps: 150},
	}, 10*time.Minute)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, c := range res.Completions {
		fmt.Println(c.App)
	}
	// Output:
	// graph
	// rnn
	// lstm
}
